"""The asyncio query service: routing, execution, telemetry, drain.

One :class:`QueryService` owns a listening socket, an
:class:`~repro.serve.admission.AdmissionController`, a
:class:`~repro.serve.registry.DatasetRegistry`, and a thread pool sized
to the admission concurrency.  The event loop only parses, routes, and
sheds; every engine call runs on a worker thread, where the engine's
cooperative guardrails (budgets, deadlines, degradation) bound it — the
loop is never blocked by an ``m^n`` query.

Robustness contract (tested by the serve chaos matrix and
``scripts/serve_smoke_check.py``):

* every response is a fully-rendered typed JSON document — injected
  faults surface as ``{"error": {...}}``, never a hung or half-written
  connection;
* overload sheds promptly (429/503) instead of queueing unboundedly,
  and predictably-over-budget queries are rejected at admission using
  the plan-time cost estimate;
* SIGTERM (or :meth:`QueryService.request_drain`) stops accepting,
  finishes in-flight requests under the drain deadline, then flushes
  the query log and feedback stores before exiting.

Per-request telemetry: a ``serve.request`` span per executed query,
``serve.*`` metrics on the existing registry (scrapeable at
``GET /metrics``), and one :class:`~repro.obs.querylog.QueryRecord` per
admitted execution *and* per shed request (status ``"shed"``) in the
dataset engine's query log.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core import guard
from repro.core.engine import AggregationEngine
from repro.core.planner import ExecutionPlan
from repro.exceptions import (
    AdmissionRejectedError,
    ProtocolError,
    ReproError,
    ServeError,
    ServiceStartupError,
)
from repro.obs import export, metrics, querylog, trace
from repro.obs.timers import Stopwatch
from repro.serve import protocol
from repro.serve.admission import AdmissionController
from repro.serve.registry import DatasetRegistry, TenantPolicy
from repro.testing import faults


class ServeConfig:
    """Service tunables (mirrored by the ``repro-bench serve`` flags)."""

    __slots__ = (
        "host",
        "port",
        "max_concurrency",
        "queue_depth",
        "queue_timeout_ms",
        "default_timeout_ms",
        "drain_timeout_ms",
        "admission_cost_check",
        "close_registry_on_drain",
    )

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrency: int = 8,
        queue_depth: int = 16,
        queue_timeout_ms: float | None = None,
        default_timeout_ms: float | None = None,
        drain_timeout_ms: float = 10000.0,
        admission_cost_check: bool = True,
        close_registry_on_drain: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.max_concurrency = max_concurrency
        self.queue_depth = queue_depth
        self.queue_timeout_ms = queue_timeout_ms
        self.default_timeout_ms = default_timeout_ms
        self.drain_timeout_ms = drain_timeout_ms
        self.admission_cost_check = admission_cost_check
        self.close_registry_on_drain = close_registry_on_drain

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class QueryService:
    """The asyncio HTTP/JSON front end over a :class:`DatasetRegistry`."""

    def __init__(
        self,
        registry: DatasetRegistry,
        *,
        config: ServeConfig | None = None,
        admission: AdmissionController | None = None,
        metrics_registry: metrics.MetricsRegistry | None = None,
    ) -> None:
        self.registry = registry
        self.config = config if config is not None else ServeConfig()
        self.metrics = (
            metrics_registry
            if metrics_registry is not None
            else metrics.get_registry()
        )
        self.admission = admission if admission is not None else AdmissionController(
            max_concurrency=self.config.max_concurrency,
            queue_depth=self.config.queue_depth,
            queue_timeout_ms=self.config.queue_timeout_ms,
            registry=self.metrics,
        )
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency,
            thread_name_prefix="repro-serve",
        )
        self._active_requests = 0
        self._requests_idle = asyncio.Event()
        self._requests_idle.set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._connection_tasks: set[asyncio.Task] = set()
        self._drain_task: asyncio.Task | None = None
        self._done = asyncio.Event()
        self.drain_report: dict | None = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "QueryService":
        """Bind and start accepting; :class:`ServiceStartupError` on failure."""
        if self._server is not None:
            return self
        self._loop = asyncio.get_running_loop()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
            )
        except OSError as error:
            raise ServiceStartupError(
                f"cannot bind query service on "
                f"{self.config.host}:{self.config.port}: {error}",
                host=self.config.host,
                port=self.config.port,
            ) from error
        self.metrics.set_gauge("serve.up", 1)
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (the ephemeral one when configured with 0)."""
        if self._server is None:
            raise ServeError("service is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger a graceful drain (CLI entry point)."""
        assert self._loop is not None, "start() first"
        for signum in (signal.SIGTERM, signal.SIGINT):
            self._loop.add_signal_handler(signum, self._ensure_drain)

    async def serve_forever(self) -> dict:
        """Serve until a drain completes; returns the drain report."""
        await self._done.wait()
        return self.drain_report or {}

    # -- drain -------------------------------------------------------------

    def _ensure_drain(self) -> asyncio.Task:
        if self._drain_task is None:
            assert self._loop is not None
            self._drain_task = self._loop.create_task(self._drain())
        return self._drain_task

    def request_drain(self) -> None:
        """Begin a graceful drain from any thread (idempotent)."""
        assert self._loop is not None, "start() first"
        try:
            self._loop.call_soon_threadsafe(self._ensure_drain)
        except RuntimeError:
            # The loop already exited: only possible after the drain ran.
            assert self._done.is_set()

    async def drain(self) -> dict:
        """Begin (or join) the graceful drain; returns its report."""
        return await self._ensure_drain()

    async def _drain(self) -> dict:
        report: dict = {
            "in_flight_at_signal": self.admission.in_flight,
            "waiting_at_signal": self.admission.waiting,
            "active_requests_at_signal": self._active_requests,
        }
        self.metrics.inc("serve.drain.requested")
        self.metrics.set_gauge("serve.up", 0)
        watch = Stopwatch()
        with watch:
            try:
                faults.maybe_fire("serve.drain")
            except Exception as error:
                # A drain-seam fault is contained: shutdown must finish.
                self.metrics.inc("serve.drain.fault")
                report["fault"] = type(error).__name__
            self.admission.begin_drain()
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            timeout_ms = self.config.drain_timeout_ms
            clean = await self._wait_requests_idle(
                timeout_ms / 1000.0 if timeout_ms is not None else None
            )
            report["drained_clean"] = clean
            report["abandoned_requests"] = 0 if clean else self._active_requests
            # Idle keep-alive connections hold no requests: closing their
            # transports lets each handler loop see EOF and exit cleanly.
            for writer in list(self._writers):
                writer.close()
            if self._connection_tasks:
                await asyncio.wait(
                    list(self._connection_tasks), timeout=1.0
                )
            for task in list(self._connection_tasks):
                task.cancel()
            self._executor.shutdown(wait=False)
            if self.config.close_registry_on_drain:
                report["flushed"] = self.registry.close()
        report["seconds"] = watch.elapsed
        self.metrics.observe("serve.drain.seconds", watch.elapsed)
        self.drain_report = report
        self._done.set()
        return report

    async def _wait_requests_idle(self, timeout_s: float | None) -> bool:
        if timeout_s is None:
            await self._requests_idle.wait()
            return True
        try:
            await asyncio.wait_for(self._requests_idle.wait(), timeout_s)
            return True
        except asyncio.TimeoutError:
            return False

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await protocol.read_request(reader)
                except ProtocolError as error:
                    await self._write(
                        writer, self._error_response(error, keep_alive=False)
                    )
                    break
                if request is None:
                    break
                response, keep_alive = await self._process(request)
                await self._write(writer, response)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._connection_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _write(self, writer: asyncio.StreamWriter, payload: bytes) -> None:
        writer.write(payload)
        await writer.drain()

    def _error_response(
        self, error: BaseException, *, keep_alive: bool = True
    ) -> bytes:
        status, body = protocol.error_to_json(error)
        return protocol.render_response(
            status, protocol.json_body(body), keep_alive=keep_alive
        )

    async def _process(self, request: protocol.HttpRequest) -> tuple[bytes, bool]:
        """Route one request; always returns a complete typed response."""
        self.metrics.inc("serve.requests")
        self._active_requests += 1
        self._requests_idle.clear()
        try:
            corrupt = faults.maybe_fire("serve.accept")
            if corrupt is faults.CORRUPT:
                raise ServeError(
                    "injected corruption at serve.accept (detected)"
                )
            status, payload = await self._route(request)
            if isinstance(payload, str):  # the Prometheus exposition
                body = payload.encode("utf-8")
                content_type = export.CONTENT_TYPE
            else:
                body = protocol.json_body(payload)
                content_type = protocol.JSON_CONTENT_TYPE
            return (
                protocol.render_response(
                    status,
                    body,
                    content_type=content_type,
                    keep_alive=request.keep_alive,
                ),
                request.keep_alive,
            )
        except Exception as error:
            # The chaos invariant: any failure — library, injected, or
            # programming error — becomes a typed JSON response on an
            # intact connection (closed afterwards for non-library ones).
            keep_alive = request.keep_alive and isinstance(error, ReproError)
            self.metrics.inc("serve.errors")
            return self._error_response(error, keep_alive=keep_alive), keep_alive
        finally:
            self._active_requests -= 1
            if self._active_requests == 0:
                self._requests_idle.set()

    async def _route(self, request: protocol.HttpRequest) -> tuple[int, dict | str]:
        path = request.path
        if path == "/healthz":
            return 200, {"status": "ok"}
        if path == "/readyz":
            snapshot = self.admission.snapshot()
            if self.admission.draining:
                return 503, {"status": "draining", **snapshot}
            return 200, {"status": "ready", **snapshot}
        if path == "/metrics":
            return 200, export.render_prometheus(self.metrics)
        if path == "/datasets":
            return 200, {
                "datasets": self.registry.names(),
                "tenants": [
                    policy.to_dict() for policy in self.registry.tenants()
                ],
            }
        if path == "/query":
            if request.method != "POST":
                raise ProtocolError("POST /query (method not allowed)")
            return await self._handle_query(request)
        raise ProtocolError(
            f"no route for {request.method} {path} (endpoints: /query, "
            "/healthz, /readyz, /metrics, /datasets)"
        )

    # -- the query endpoint --------------------------------------------------

    async def _handle_query(self, request: protocol.HttpRequest) -> tuple[int, dict]:
        qr = protocol.parse_query_request(request.json())
        engine = self.registry.engine(qr.dataset)
        policy = self.registry.tenant(qr.tenant)
        timeout_ms = (
            qr.timeout_ms
            if qr.timeout_ms is not None
            else self.config.default_timeout_ms
        )
        budget = guard.combine(
            policy.budget,
            guard.Budget(timeout_ms=timeout_ms)
            if timeout_ms is not None
            else None,
        )
        samples = qr.samples if qr.samples is not None else policy.samples
        assert self._loop is not None
        try:
            async with self.admission.admit(policy.name):
                corrupt = faults.maybe_fire("serve.handler")
                result = await self._loop.run_in_executor(
                    self._executor,
                    self._execute,
                    engine,
                    qr,
                    policy,
                    budget,
                    samples,
                    corrupt is faults.CORRUPT,
                )
        except ReproError as error:
            self._record_outcome(engine, qr, error=error)
            raise
        self.metrics.inc("serve.completed")
        self.metrics.observe("serve.latency_seconds", result.pop("_seconds"))
        if result["status"] == querylog.STATUS_DEGRADED:
            self.metrics.inc("serve.degraded")
        return 200, result

    def _execute(
        self,
        engine: AggregationEngine,
        qr: protocol.QueryRequest,
        policy: TenantPolicy,
        budget: guard.Budget | None,
        samples: int | None,
        corrupt: bool,
    ) -> dict:
        """Worker-thread body: plan, admission cost check, execute, shape.

        Runs on the service's thread pool; ``last_stats`` and
        ``last_degradation`` are thread-local on the context, so the
        telemetry read back here belongs to *this* request even with the
        engine shared across concurrent workers.
        """
        with trace.span(
            "serve.request",
            dataset=qr.dataset,
            tenant=policy.name,
            digest=querylog.query_digest(qr.query),
        ):
            plan = engine.plan(
                qr.query, qr.mapping_semantics, qr.aggregate_semantics
            )
            if self.config.admission_cost_check:
                self._admission_cost_check(plan, budget, samples, engine)
            watch = Stopwatch()
            with watch:
                answer = plan.answer(
                    samples=samples, seed=qr.seed, budget=budget
                )
            if corrupt:
                # The seam's detectable corruption: a payload that cannot
                # be an answer, caught by serialization below.
                answer = faults.CORRUPT  # type: ignore[assignment]
            degradation = engine.context.last_degradation
            stats = engine.context.last_stats
            payload = protocol.answer_to_json(answer)
        executed_lane = (
            stats["executed_lane"] if stats is not None else plan.lane
        )
        status = (
            querylog.STATUS_DEGRADED
            if degradation is not None
            else querylog.STATUS_OK
        )
        result: dict = {
            "protocol": protocol.PROTOCOL_VERSION,
            "dataset": qr.dataset,
            "tenant": policy.name,
            "digest": querylog.query_digest(qr.query),
            "mapping_semantics": qr.mapping_semantics,
            "aggregate_semantics": qr.aggregate_semantics,
            "status": status,
            "lane": executed_lane,
            "answer": payload,
            "seconds": watch.elapsed,
            "_seconds": watch.elapsed,
        }
        if degradation is not None:
            result["degradation"] = dict(degradation)
            if "epsilon" in degradation:
                result["epsilon"] = degradation["epsilon"]
        return result

    def _admission_cost_check(
        self,
        plan: ExecutionPlan,
        budget: guard.Budget | None,
        samples: int | None,
        engine: AggregationEngine,
    ) -> None:
        """Reject queries the cost model already prices over budget.

        Only dimensions degradation cannot save reject: every lane scans
        at least the source rows, so ``rows`` over ``max_rows`` is
        predictably fatal; ``worlds`` rejects only when no candidate lane
        (including a sampling degradation at the effective sample count)
        fits under ``max_worlds``.  Deadlines never reject — a time
        budget is a measurement, not an estimate.
        """
        estimate = plan.estimate
        if budget is None or estimate is None:
            return
        if budget.max_rows is not None and estimate.rows > budget.max_rows:
            self.metrics.inc("serve.shed.cost")
            raise AdmissionRejectedError(
                f"estimated {estimate.rows:g} row visits exceed the "
                f"tenant's max_rows budget ({budget.max_rows})",
                resource="rows",
                estimate=estimate.rows,
                limit=budget.max_rows,
            )
        if budget.max_worlds is None:
            return
        effective_samples = (
            samples if samples is not None else engine.context.samples
        )
        cheapest = estimate.worlds
        if engine.context.degrade:
            for candidate in estimate.candidates.values():
                worlds = candidate.worlds
                if candidate.lane == "sampling":
                    worlds = float(effective_samples)
                cheapest = min(cheapest, worlds)
        if cheapest > budget.max_worlds:
            self.metrics.inc("serve.shed.cost")
            raise AdmissionRejectedError(
                f"estimated {cheapest:g} possible worlds exceed the "
                f"tenant's max_worlds budget ({budget.max_worlds}) on "
                "every available lane",
                resource="worlds",
                estimate=cheapest,
                limit=budget.max_worlds,
            )

    def _record_outcome(
        self,
        engine: AggregationEngine,
        qr: protocol.QueryRequest,
        *,
        error: ReproError,
    ) -> None:
        """Log a shed/rejected request into the dataset's query log.

        Executed requests are logged by the engine's own outermost
        execution frame; this covers the ones admission turned away, so
        the query log accounts for every request the service saw.
        """
        if not isinstance(
            error, (AdmissionRejectedError, ServeError)
        ) or isinstance(error, ProtocolError):
            return
        try:
            self.metrics.inc("serve.shed")
            engine.context.query_log.record(
                querylog.QueryRecord(
                    ts=querylog.now(),
                    query=qr.query,
                    mapping_semantics=qr.mapping_semantics,
                    aggregate_semantics=qr.aggregate_semantics,
                    lane=querylog.ADMISSION_LANE,
                    status=querylog.STATUS_SHED,
                    seconds=0.0,
                    rows=0,
                    error=type(error).__name__,
                )
            )
        except Exception:
            # Telemetry must never turn a shed into a crash.
            self.metrics.inc("serve.querylog_error")


class ServiceThread:
    """A service running on its own event loop in a daemon thread.

    The integration seam for tests, benches, and smoke checks: start,
    get the bound port, drive it with blocking clients, then
    :meth:`stop` (drain + join).  Startup errors surface in
    :meth:`start` as the typed :class:`ServiceStartupError`.
    """

    def __init__(
        self,
        registry: DatasetRegistry,
        *,
        config: ServeConfig | None = None,
        metrics_registry: metrics.MetricsRegistry | None = None,
    ) -> None:
        self.service = QueryService(
            registry, config=config, metrics_registry=metrics_registry
        )
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._port: int | None = None

    def _main(self) -> None:
        async def body() -> None:
            try:
                await self.service.start()
                self._port = self.service.port
            except BaseException as error:  # noqa: BLE001 - reported to caller
                self._startup_error = error
                self._started.set()
                return
            self._started.set()
            await self.service.serve_forever()

        asyncio.run(body())

    def start(self) -> "ServiceThread":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    @property
    def port(self) -> int:
        assert self._port is not None, "start() first"
        return self._port

    def request_drain(self) -> None:
        self.service.request_drain()

    def stop(self, timeout_s: float = 30.0) -> dict | None:
        """Drain gracefully and join the loop thread."""
        if self._thread is None:
            return None
        self.service.request_drain()
        self._thread.join(timeout=timeout_s)
        return self.service.drain_report

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
