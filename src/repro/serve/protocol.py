"""The query service's wire protocol: HTTP framing, JSON schema, errors.

Three concerns, all dependency-free:

* **HTTP/1.1 framing** — :func:`read_request` parses one request off an
  :class:`asyncio.StreamReader` (request line, headers, Content-Length
  body; keep-alive by default), :func:`render_response` produces the
  byte-complete response.  The service never streams partial bodies:
  every response is rendered in full before the first byte is written,
  so an injected fault can never leave a half-written connection.
* **Request/answer JSON** — :func:`parse_query_request` validates the
  ``POST /query`` body into a :class:`QueryRequest`;
  :func:`answer_to_json` / :func:`answer_from_json` round-trip every
  :class:`~repro.core.answers.AggregateAnswer` type *exactly* (floats
  survive via ``repr``, so a served answer compares ``==`` to the same
  engine's direct answer).
* **Typed errors** — :func:`error_to_json` maps any exception to an
  HTTP status and a ``{"error": {...}}`` body whose ``type`` is the
  exception class, ``code`` the CLI-aligned exit code
  (:data:`repro.exceptions.ERROR_EXIT_CODES`), plus the class's
  structured fields (guard progress, shed counters, admission
  estimates); :func:`error_from_json` rebuilds the typed exception on
  the client side.
"""

from __future__ import annotations

import asyncio
import datetime
import json

from repro.core.answers import (
    AggregateAnswer,
    DistributionAnswer,
    ExpectedValueAnswer,
    GroupedAnswer,
    RangeAnswer,
)
from repro.exceptions import (
    AdmissionRejectedError,
    BudgetExceededError,
    EvaluationError,
    GuardrailError,
    IntractableError,
    MappingError,
    ProtocolError,
    QueryTimeoutError,
    ReformulationError,
    ReproError,
    SchemaError,
    ServeError,
    ServiceDrainingError,
    ServiceOverloadedError,
    SQLSyntaxError,
    StorageError,
    UnknownDatasetError,
    UnsupportedQueryError,
    exit_code_for,
)
from repro.prob.distribution import DiscreteDistribution

#: Version stamped into every response envelope; bump on incompatible
#: schema changes so clients can refuse to misparse.
PROTOCOL_VERSION = 1

JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Upper bounds keeping a misbehaving client from exhausting memory.
MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 32768
MAX_BODY_BYTES = 8 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Exception class -> HTTP status, most specific first (isinstance walk).
ERROR_STATUS: tuple[tuple[type, int], ...] = (
    (QueryTimeoutError, 504),
    (AdmissionRejectedError, 429),
    (ServiceOverloadedError, 429),
    (ServiceDrainingError, 503),
    (BudgetExceededError, 422),
    (GuardrailError, 422),
    (IntractableError, 422),
    (UnknownDatasetError, 404),
    (ProtocolError, 400),
    (SQLSyntaxError, 400),
    (UnsupportedQueryError, 400),
    (SchemaError, 400),
    (MappingError, 400),
    (ReformulationError, 400),
    (StorageError, 500),
    (EvaluationError, 500),
    (ReproError, 500),
)

#: Error type name -> class, for client-side reconstruction.
_ERROR_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls, _ in ERROR_STATUS
}


class HttpRequest:
    """One parsed HTTP request (method, path, query string, body)."""

    __slots__ = ("method", "path", "query", "headers", "body", "keep_alive")

    def __init__(
        self,
        method: str,
        path: str,
        query: str,
        headers: dict[str, str],
        body: bytes,
        keep_alive: bool,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive

    def json(self) -> dict:
        """The body as a JSON object; :class:`ProtocolError` otherwise."""
        if not self.body:
            raise ProtocolError("request body is empty (expected JSON)")
        try:
            payload = json.loads(self.body)
        except ValueError as error:
            raise ProtocolError(f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        return payload


async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return b""  # clean EOF between requests
        raise ProtocolError("connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise ProtocolError("request line or header too long")
    if len(line) > limit:
        raise ProtocolError("request line or header too long")
    return line


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request; ``None`` on clean EOF (client closed keep-alive).

    Raises :class:`ProtocolError` on malformed framing — the server
    answers it with a typed 400 and closes the connection.
    """
    request_line = await _read_line(reader, MAX_REQUEST_LINE)
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {request_line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported HTTP version {version!r}")
    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await _read_line(reader, MAX_REQUEST_LINE)
        if not line:
            raise ProtocolError("connection closed inside headers")
        if line in (b"\r\n", b"\n"):
            break
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise ProtocolError("headers too large")
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(f"bad Content-Length {length_text!r}")
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"unacceptable Content-Length {length}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("connection closed inside body")
    path, _, query = target.partition("?")
    connection = headers.get("connection", "").lower()
    keep_alive = connection != "close" and version != "HTTP/1.0"
    return HttpRequest(method.upper(), path, query, headers, body, keep_alive)


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = JSON_CONTENT_TYPE,
    keep_alive: bool = True,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """The byte-complete HTTP/1.1 response (rendered before any write)."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_body(payload: dict) -> bytes:
    """The payload as compact UTF-8 JSON bytes."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


# -- request schema ----------------------------------------------------------


class QueryRequest:
    """A validated ``POST /query`` body."""

    __slots__ = (
        "dataset",
        "query",
        "mapping_semantics",
        "aggregate_semantics",
        "tenant",
        "samples",
        "seed",
        "timeout_ms",
    )

    def __init__(
        self,
        *,
        dataset: str,
        query: str,
        mapping_semantics: str,
        aggregate_semantics: str,
        tenant: str = "default",
        samples: int | None = None,
        seed: int | None = None,
        timeout_ms: float | None = None,
    ) -> None:
        self.dataset = dataset
        self.query = query
        self.mapping_semantics = mapping_semantics
        self.aggregate_semantics = aggregate_semantics
        self.tenant = tenant
        self.samples = samples
        self.seed = seed
        self.timeout_ms = timeout_ms


_MAPPING_SEMANTICS = ("by-table", "by-tuple")
_AGGREGATE_SEMANTICS = ("range", "distribution", "expected-value")


def _field(payload: dict, name: str, kind: type, *, default=None, required=False):
    value = payload.get(name, default)
    if value is None:
        if required:
            raise ProtocolError(f"missing required field {name!r}")
        return None
    if kind is float and isinstance(value, int) and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, kind) or isinstance(value, bool) and kind is not bool:
        raise ProtocolError(
            f"field {name!r} must be {kind.__name__}, got "
            f"{type(value).__name__}"
        )
    return value


def parse_query_request(payload: dict) -> QueryRequest:
    """Validate a ``POST /query`` JSON object into a :class:`QueryRequest`."""
    known = {
        "dataset", "query", "mapping_semantics", "aggregate_semantics",
        "tenant", "samples", "seed", "timeout_ms",
    }
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ProtocolError(f"unknown field(s): {', '.join(unknown)}")
    msem = _field(payload, "mapping_semantics", str, default="by-table")
    asem = _field(payload, "aggregate_semantics", str, default="distribution")
    if msem not in _MAPPING_SEMANTICS:
        raise ProtocolError(
            f"mapping_semantics must be one of {_MAPPING_SEMANTICS}, "
            f"got {msem!r}"
        )
    if asem not in _AGGREGATE_SEMANTICS:
        raise ProtocolError(
            f"aggregate_semantics must be one of {_AGGREGATE_SEMANTICS}, "
            f"got {asem!r}"
        )
    samples = _field(payload, "samples", int)
    if samples is not None and samples < 1:
        raise ProtocolError(f"samples must be >= 1, got {samples}")
    timeout_ms = _field(payload, "timeout_ms", float)
    if timeout_ms is not None and timeout_ms < 0:
        raise ProtocolError(f"timeout_ms must be >= 0, got {timeout_ms}")
    return QueryRequest(
        dataset=_field(payload, "dataset", str, required=True),
        query=_field(payload, "query", str, required=True),
        mapping_semantics=msem,
        aggregate_semantics=asem,
        tenant=_field(payload, "tenant", str, default="default"),
        samples=samples,
        seed=_field(payload, "seed", int),
        timeout_ms=timeout_ms,
    )


# -- answer (de)serialization ------------------------------------------------


def _encode_key(key: object):
    """A group key as JSON, preserving exact type for the round trip."""
    if isinstance(key, datetime.date):
        return {"date": key.isoformat()}
    if key is None or isinstance(key, (str, int, float, bool)):
        return key
    raise EvaluationError(
        f"cannot serialize group key of type {type(key).__name__}"
    )


def _decode_key(data: object) -> object:
    if isinstance(data, dict):
        return datetime.date.fromisoformat(data["date"])
    return data


def answer_to_json(answer: AggregateAnswer) -> dict:
    """The JSON form of any aggregate answer (exact float round trip)."""
    if isinstance(answer, RangeAnswer):
        return {"kind": "range", "low": answer.low, "high": answer.high}
    if isinstance(answer, DistributionAnswer):
        outcomes = None
        if answer.distribution is not None:
            outcomes = [[v, p] for v, p in answer.distribution.items()]
        return {
            "kind": "distribution",
            "outcomes": outcomes,
            "undefined_probability": answer.undefined_probability,
        }
    if isinstance(answer, ExpectedValueAnswer):
        return {"kind": "expected-value", "value": answer.value}
    if isinstance(answer, GroupedAnswer):
        return {
            "kind": "grouped",
            "groups": [
                [_encode_key(key), answer_to_json(value)]
                for key, value in answer.groups.items()
            ],
        }
    raise EvaluationError(
        f"cannot serialize answer of type {type(answer).__name__}"
    )


def answer_from_json(data: dict) -> AggregateAnswer:
    """Rebuild the :class:`AggregateAnswer` a service response carries.

    The inverse of :func:`answer_to_json`: the result compares ``==`` to
    the original answer object (bit-identical floats).
    """
    try:
        kind = data["kind"]
    except (TypeError, KeyError):
        raise ProtocolError(f"not an answer payload: {data!r}")
    if kind == "range":
        return RangeAnswer(data["low"], data["high"])
    if kind == "distribution":
        outcomes = data["outcomes"]
        distribution = None
        if outcomes is not None:
            distribution = DiscreteDistribution(
                {value: probability for value, probability in outcomes}
            )
        return DistributionAnswer(
            distribution, data.get("undefined_probability", 0.0)
        )
    if kind == "expected-value":
        return ExpectedValueAnswer(data["value"])
    if kind == "grouped":
        return GroupedAnswer({
            _decode_key(key): answer_from_json(value)
            for key, value in data["groups"]
        })
    raise ProtocolError(f"unknown answer kind {kind!r}")


# -- typed errors ------------------------------------------------------------

#: Structured attributes copied into the error body per class.
_ERROR_FIELDS = (
    "progress", "resource", "limit", "used", "timeout_ms", "elapsed_ms",
    "in_flight", "waiting", "queue_depth", "retry_after_ms", "estimate",
    "dataset", "known", "position",
)


def http_status_for(error: BaseException) -> int:
    """The HTTP status for ``error`` (most specific ERROR_STATUS entry)."""
    for cls, status in ERROR_STATUS:
        if isinstance(error, cls):
            return status
    return 500


def error_to_json(error: BaseException) -> tuple[int, dict]:
    """``(http_status, body)`` for any exception.

    Library errors keep their class name and structured fields;
    unexpected exceptions (the chaos matrix's injected ``OSError``\\ s,
    say) are reported as an ``InternalError`` naming the original class —
    typed JSON either way, never a traceback or a hung connection.
    """
    if isinstance(error, ReproError):
        body = {
            "type": type(error).__name__,
            "code": exit_code_for(error),
            "message": str(error),
        }
        for field in _ERROR_FIELDS:
            value = getattr(error, field, None)
            if value is not None and value != ():
                body[field] = list(value) if isinstance(value, tuple) else value
        return http_status_for(error), {"error": body}
    return 500, {
        "error": {
            "type": "InternalError",
            "code": 2,
            "message": f"{type(error).__name__}: {error}",
        }
    }


def error_from_json(payload: dict) -> ReproError:
    """The typed exception a ``{"error": {...}}`` body describes.

    Unknown types come back as a plain :class:`ServeError` so the caller
    still gets the library's base class.
    """
    body = payload.get("error") or {}
    type_name = body.get("type", "ServeError")
    message = body.get("message", "service error")
    cls = _ERROR_TYPES.get(type_name)
    if cls is None or cls in (GuardrailError,):
        error: ReproError = ServeError(f"{type_name}: {message}")
    else:
        try:
            error = cls(message)
        except TypeError:  # classes with required keyword fields
            error = ServeError(f"{type_name}: {message}")
    for field in _ERROR_FIELDS:
        if field in body and getattr(error, field, None) is None:
            try:
                setattr(error, field, body[field])
            except AttributeError:  # __slots__ without the field
                continue
    return error
