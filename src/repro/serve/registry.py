"""Datasets and tenants: the service's persistent state.

A :class:`DatasetRegistry` maps dataset names to long-lived
:class:`~repro.core.engine.AggregationEngine` instances.  Engines are
built once and shared by every request that names the dataset, so the
compile/plan/prepared caches and columnar snapshots amortize across the
whole request stream — the serving payoff of the prepared-plan work.
Engine construction defaults lean resilient (``degrade=True``,
``allow_sampling=True``): a tenant's guardrail breach walks the
degradation chain (parallel → streaming → scalar, exact → sampling with
its DKW epsilon recorded) instead of failing the request.

A :class:`TenantPolicy` attaches a standing
:class:`~repro.core.guard.Budget` (and optional sampling default) to a
tenant name; the service combines it with the per-request deadline via
:func:`repro.core.guard.combine` so one tenant's expensive query cannot
starve another's — the per-tenant isolation contract of
``docs/serving.md``.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Mapping

from repro.core.engine import AggregationEngine
from repro.core.guard import Budget
from repro.exceptions import EvaluationError, UnknownDatasetError
from repro.schema.mapping import PMapping, SchemaPMapping
from repro.storage.table import Table

#: Engine construction defaults for served datasets; ``add``/``load``
#: callers can override any of them per dataset.
SERVING_ENGINE_DEFAULTS: dict = {
    "degrade": True,
    "allow_sampling": True,
    "vectorize": True,
}


class TenantPolicy:
    """One tenant's standing execution policy.

    Parameters
    ----------
    name:
        The tenant identifier requests carry in their ``tenant`` field.
    budget:
        The tenant's standing :class:`Budget` (resource caps and/or a
        default deadline); combined with — never loosened by — the
        per-request ``timeout_ms``.
    samples:
        Tenant default for the sampling estimator (a request's explicit
        ``samples`` wins).
    """

    __slots__ = ("name", "budget", "samples")

    def __init__(
        self,
        name: str,
        *,
        budget: Budget | None = None,
        samples: int | None = None,
    ) -> None:
        self.name = name
        self.budget = budget
        self.samples = samples

    def to_dict(self) -> dict:
        out: dict = {"name": self.name}
        if self.budget is not None:
            out["budget"] = self.budget.to_dict()
        if self.samples is not None:
            out["samples"] = self.samples
        return out

    def __repr__(self) -> str:
        return f"TenantPolicy({self.to_dict()!r})"


class DatasetRegistry:
    """Named datasets to persistent engines (plus tenant policies).

    Thread-safe: the service's worker threads resolve engines while the
    event loop registers/drops datasets.  Closing the registry closes
    every engine — flushing feedback stores to their ``feedback_path`` —
    and reports per-dataset query-log sizes, so a drain can account for
    what it flushed.
    """

    def __init__(self, *, engine_defaults: Mapping[str, object] | None = None) -> None:
        self._engines: dict[str, AggregationEngine] = {}
        self._tenants: dict[str, TenantPolicy] = {}
        self._lock = threading.Lock()
        self.engine_defaults = dict(SERVING_ENGINE_DEFAULTS)
        if engine_defaults:
            self.engine_defaults.update(engine_defaults)

    # -- datasets ----------------------------------------------------------

    def add(
        self,
        name: str,
        tables: Table | Iterable[Table] | Mapping[str, Table],
        mappings: SchemaPMapping | PMapping | Iterable[PMapping],
        **engine_kwargs: object,
    ) -> AggregationEngine:
        """Build and register an engine for ``name`` (defaults applied)."""
        kwargs = dict(self.engine_defaults)
        kwargs.update(engine_kwargs)
        engine = AggregationEngine(tables, mappings, **kwargs)
        return self.add_engine(name, engine)

    def add_engine(self, name: str, engine: AggregationEngine) -> AggregationEngine:
        """Register an already-built engine under ``name``."""
        if not name:
            raise EvaluationError("dataset name must be non-empty")
        with self._lock:
            if name in self._engines:
                raise EvaluationError(f"dataset {name!r} is already registered")
            self._engines[name] = engine
        return engine

    def load_csv(
        self,
        name: str,
        data_path: str,
        mapping_path: str,
        **engine_kwargs: object,
    ) -> AggregationEngine:
        """Register a dataset from a CSV file and a JSON p-mapping."""
        from repro.schema.serialize import load_pmapping
        from repro.storage.csv_io import load_table_csv

        pmapping = load_pmapping(mapping_path)
        table = load_table_csv(pmapping.source, data_path)
        return self.add(name, [table], pmapping, **engine_kwargs)

    def add_synthetic(
        self,
        name: str,
        *,
        tuples: int = 500,
        attributes: int = 8,
        mappings: int = 5,
        seed: int = 0,
        relation: str = "T",
        **engine_kwargs: object,
    ) -> AggregationEngine:
        """Register a synthetic dataset (demos, benches, smoke checks).

        The mediated relation is named ``relation`` so queries read
        ``SELECT COUNT(*) FROM T``.
        """
        from repro.data import synthetic

        target = synthetic.mediated_relation(relation)
        source = synthetic.source_relation(attributes)
        table = synthetic.generate_source_table(
            tuples, attributes, seed=seed, relation=source
        )
        pmapping = synthetic.generate_pmapping(
            source, mappings, seed=seed, target=target
        )
        return self.add(name, [table], pmapping, **engine_kwargs)

    def engine(self, name: str) -> AggregationEngine:
        """The engine serving ``name``; typed 404 when unknown."""
        with self._lock:
            engine = self._engines.get(name)
            if engine is None:
                raise UnknownDatasetError(
                    f"unknown dataset {name!r}",
                    dataset=name,
                    known=tuple(sorted(self._engines)),
                )
            return engine

    def names(self) -> list[str]:
        """The registered dataset names, sorted."""
        with self._lock:
            return sorted(self._engines)

    def drop(self, name: str) -> None:
        """Unregister and close one dataset's engine."""
        with self._lock:
            engine = self._engines.pop(name, None)
        if engine is not None:
            engine.close()

    # -- tenants -----------------------------------------------------------

    def set_tenant(self, policy: TenantPolicy) -> TenantPolicy:
        """Install (or replace) one tenant's policy."""
        with self._lock:
            self._tenants[policy.name] = policy
        return policy

    def tenant(self, name: str) -> TenantPolicy:
        """The policy for ``name`` (an unrestricted one when unset)."""
        with self._lock:
            policy = self._tenants.get(name)
        return policy if policy is not None else TenantPolicy(name)

    def tenants(self) -> list[TenantPolicy]:
        """Every explicitly-installed tenant policy."""
        with self._lock:
            return [self._tenants[name] for name in sorted(self._tenants)]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> dict:
        """Close every engine; returns a per-dataset flush report.

        Closing an engine persists its feedback store (when configured
        with a ``feedback_path``) and releases pools/backends; the report
        carries each dataset's buffered query-log record count at close,
        so the drain log can state what was flushed.
        """
        with self._lock:
            engines = dict(self._engines)
            self._engines.clear()
        report: dict = {}
        for name, engine in engines.items():
            records = len(engine.context.query_log)
            engine.close()
            report[name] = {"query_log_records": records}
        return report

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._engines

    def __len__(self) -> int:
        with self._lock:
            return len(self._engines)

    def __enter__(self) -> "DatasetRegistry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
