"""Admission control: bounded concurrency, a bounded queue, load shedding.

The controller enforces the serving tier's central robustness invariant:
**work either runs promptly or is rejected promptly**.  At most
``max_concurrency`` requests execute at once; at most ``queue_depth``
more may wait for a slot (optionally bounded in *time* by
``queue_timeout_ms``); anything beyond that is shed immediately with a
typed :class:`~repro.exceptions.ServiceOverloadedError` — a 429 on the
wire — instead of joining an unbounded queue whose latency grows without
limit.  Once :meth:`begin_drain` is called, every new request is shed
with :class:`~repro.exceptions.ServiceDrainingError` (a 503) and
:meth:`wait_idle` lets the drain sequence await the in-flight tail.

All state lives on one event loop, so plain integers are race-free; the
controller publishes them as ``serve.*`` gauges/counters on the metrics
registry for the Prometheus endpoint.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager

from repro.exceptions import ServiceDrainingError, ServiceOverloadedError
from repro.obs import metrics
from repro.obs.timers import Stopwatch


class AdmissionController:
    """Semaphore-bounded concurrency with a bounded, sheddable queue.

    Parameters
    ----------
    max_concurrency:
        Requests executing at once (the semaphore's size).
    queue_depth:
        Requests allowed to *wait* for a slot beyond the executing ones;
        ``0`` sheds the instant the service is saturated.
    queue_timeout_ms:
        Longest a request may wait in the queue before being shed anyway
        (``None`` waits until a slot frees — the queue is still bounded
        in depth).
    registry:
        Metrics registry for the ``serve.*`` series (the process-wide
        default registry when omitted).
    """

    def __init__(
        self,
        *,
        max_concurrency: int = 8,
        queue_depth: int = 16,
        queue_timeout_ms: float | None = None,
        registry: metrics.MetricsRegistry | None = None,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        self.max_concurrency = max_concurrency
        self.queue_depth = queue_depth
        self.queue_timeout_ms = queue_timeout_ms
        self.metrics = registry if registry is not None else metrics.get_registry()
        self._semaphore = asyncio.Semaphore(max_concurrency)
        self._in_flight = 0
        self._waiting = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()

    # -- state -------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Requests currently holding an execution slot."""
        return self._in_flight

    @property
    def waiting(self) -> int:
        """Requests currently queued for a slot."""
        return self._waiting

    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` was called."""
        return self._draining

    def snapshot(self) -> dict:
        """The controller's counters, for readyz/error payloads."""
        return {
            "in_flight": self._in_flight,
            "waiting": self._waiting,
            "max_concurrency": self.max_concurrency,
            "queue_depth": self.queue_depth,
            "draining": self._draining,
        }

    def _publish(self) -> None:
        self.metrics.set_gauge("serve.in_flight", self._in_flight)
        self.metrics.set_gauge("serve.waiting", self._waiting)

    # -- admission ---------------------------------------------------------

    def _shed_overloaded(self) -> ServiceOverloadedError:
        self.metrics.inc("serve.shed.queue_full")
        # A full queue drains one slot-duration at a time: hint clients
        # to retry after roughly one queue's worth of current latency.
        return ServiceOverloadedError(
            f"service saturated: {self._in_flight} executing, "
            f"{self._waiting} queued (queue depth {self.queue_depth})",
            in_flight=self._in_flight,
            waiting=self._waiting,
            queue_depth=self.queue_depth,
            retry_after_ms=100.0 * max(1, self._waiting),
        )

    def _shed_draining(self) -> ServiceDrainingError:
        self.metrics.inc("serve.shed.draining")
        return ServiceDrainingError(
            "service is draining and admits no new queries"
        )

    @asynccontextmanager
    async def admit(self, tenant: str = "default"):
        """Hold an execution slot for the ``async with`` body.

        Sheds (raises) instead of waiting when the service is draining,
        the queue is full, or the queue wait exceeds
        ``queue_timeout_ms``.  On admission, publishes the queue-wait
        histogram and per-tenant admission counters.
        """
        if self._draining:
            raise self._shed_draining()
        if self._semaphore.locked() and self._waiting >= self.queue_depth:
            raise self._shed_overloaded()
        self._waiting += 1
        self._publish()
        watch = Stopwatch()
        try:
            with watch:
                if self.queue_timeout_ms is not None:
                    try:
                        await asyncio.wait_for(
                            self._semaphore.acquire(),
                            timeout=self.queue_timeout_ms / 1000.0,
                        )
                    except asyncio.TimeoutError:
                        self.metrics.inc("serve.shed.queue_timeout")
                        raise ServiceOverloadedError(
                            f"queued {watch.elapsed * 1e3:.0f} ms without "
                            f"reaching an execution slot (queue timeout "
                            f"{self.queue_timeout_ms:g} ms)",
                            in_flight=self._in_flight,
                            waiting=self._waiting - 1,
                            queue_depth=self.queue_depth,
                            retry_after_ms=self.queue_timeout_ms,
                        )
                else:
                    await self._semaphore.acquire()
        finally:
            self._waiting -= 1
        if self._draining:
            # Drain began while this request was queued: it never ran,
            # so it sheds like any other post-drain arrival.
            self._semaphore.release()
            self._publish()
            raise self._shed_draining()
        self._in_flight += 1
        self._idle.clear()
        self.metrics.observe("serve.queue_wait_seconds", watch.elapsed)
        self.metrics.inc("serve.admitted")
        self.metrics.inc(f"serve.tenant.{tenant}.admitted")
        self._publish()
        try:
            yield self
        finally:
            self._in_flight -= 1
            self._semaphore.release()
            if self._in_flight == 0:
                self._idle.set()
            self._publish()

    # -- drain -------------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting; queued-but-not-started requests shed."""
        self._draining = True

    async def wait_idle(self, timeout_s: float | None = None) -> bool:
        """Await the in-flight tail; False when ``timeout_s`` expires first."""
        if timeout_s is None:
            await self._idle.wait()
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=timeout_s)
            return True
        except asyncio.TimeoutError:
            return False
