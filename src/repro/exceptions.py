"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one type to handle any library failure.  The subtypes mirror
the major subsystems: schema/mapping validation, SQL parsing, query
reformulation, storage, and the aggregate-answering engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """An invalid schema, relation, or attribute definition."""


class MappingError(ReproError):
    """An invalid schema mapping.

    Raised when a mapping violates Definition 1 or 2 of the paper: a
    correspondence references a missing attribute, a mapping is not
    one-to-one, or a p-mapping's probabilities do not form a distribution.
    """


class SQLSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed.

    Carries the approximate position of the failure to help users locate the
    offending token.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class ReformulationError(ReproError):
    """A query could not be rewritten under a given mapping.

    Typically the query references a target attribute for which the mapping
    has no correspondence.
    """


class StorageError(ReproError):
    """A storage-layer failure (unknown table/column, type mismatch, ...)."""


class EvaluationError(ReproError):
    """An aggregate query could not be evaluated.

    For example: AVG over zero qualifying tuples in a semantics that demands
    a defined value, or an unsupported aggregate/semantics combination when
    exponential fallbacks are disabled.
    """


class EngineClosedError(EvaluationError, StorageError):
    """An operation was attempted on an engine whose backend was closed.

    Both an evaluation failure (the engine can no longer answer) and a
    storage failure (the backing database is gone), so handlers catching
    either — or plain :class:`ReproError` — see it.
    """


class IntractableError(EvaluationError):
    """The requested semantics cell has no PTIME algorithm.

    Raised by the planner when the caller asked for an exact answer in one of
    the cells the paper leaves open (e.g. by-tuple/distribution SUM) while
    forbidding the exponential fallback.  The caller may retry with
    ``allow_exponential=True`` or switch to the sampling estimator.
    """


class UnsupportedQueryError(ReproError):
    """The query shape is outside the supported aggregate-SQL subset."""


class ObservabilityError(ReproError):
    """A failure in the observability tooling (export, serving, query log).

    Never raised from the answer pipeline itself — telemetry must not
    fail queries — only from the explicitly-requested tooling around it
    (e.g. standing up a scrape endpoint).
    """


class MetricsExportError(ObservabilityError):
    """The Prometheus scrape endpoint could not be stood up.

    Typically the requested ``host:port`` is already in use or not
    bindable; ``host``/``port`` carry the attempted address.
    """

    def __init__(
        self,
        message: str,
        *,
        host: str | None = None,
        port: int | None = None,
    ) -> None:
        super().__init__(message)
        self.host = host
        self.port = port


def _rebuild_guardrail_error(cls, args, state):
    error = cls(*args)
    error.__dict__.update(state)
    return error


class GuardrailError(EvaluationError):
    """An execution guardrail stopped a query before it finished.

    Carries ``progress``: a structured snapshot of how far execution got
    before the guard fired (rows scanned, worlds enumerated, largest
    distribution support seen, elapsed milliseconds).  Subclasses say
    *which* guardrail fired; catching this type handles both.
    """

    def __init__(self, message: str, *, progress: dict | None = None) -> None:
        super().__init__(message)
        self.progress: dict = dict(progress or {})

    def __reduce__(self):
        # Keep the structured payload across process boundaries (the
        # parallel lane's workers raise these through pickle).
        return (_rebuild_guardrail_error, (type(self), self.args, self.__dict__))


class QueryTimeoutError(GuardrailError):
    """The query's wall-clock deadline expired before it finished.

    ``timeout_ms`` is the configured deadline; ``elapsed_ms`` the wall
    clock actually spent before the cooperative check noticed.
    """

    def __init__(
        self,
        message: str,
        *,
        timeout_ms: float | None = None,
        elapsed_ms: float | None = None,
        progress: dict | None = None,
    ) -> None:
        super().__init__(message, progress=progress)
        self.timeout_ms = timeout_ms
        self.elapsed_ms = elapsed_ms


class BudgetExceededError(GuardrailError):
    """A resource budget (rows, worlds, or support size) was exhausted.

    ``resource`` names the budget dimension (``"rows"``, ``"worlds"``,
    ``"support"``), ``limit`` its configured cap, and ``used`` the value
    that tripped it.
    """

    def __init__(
        self,
        message: str,
        *,
        resource: str | None = None,
        limit: int | None = None,
        used: int | None = None,
        progress: dict | None = None,
    ) -> None:
        super().__init__(message, progress=progress)
        self.resource = resource
        self.limit = limit
        self.used = used
