"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one type to handle any library failure.  The subtypes mirror
the major subsystems: schema/mapping validation, SQL parsing, query
reformulation, storage, and the aggregate-answering engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """An invalid schema, relation, or attribute definition."""


class MappingError(ReproError):
    """An invalid schema mapping.

    Raised when a mapping violates Definition 1 or 2 of the paper: a
    correspondence references a missing attribute, a mapping is not
    one-to-one, or a p-mapping's probabilities do not form a distribution.
    """


class SQLSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed.

    Carries the approximate position of the failure to help users locate the
    offending token.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class ReformulationError(ReproError):
    """A query could not be rewritten under a given mapping.

    Typically the query references a target attribute for which the mapping
    has no correspondence.
    """


class StorageError(ReproError):
    """A storage-layer failure (unknown table/column, type mismatch, ...)."""


class EvaluationError(ReproError):
    """An aggregate query could not be evaluated.

    For example: AVG over zero qualifying tuples in a semantics that demands
    a defined value, or an unsupported aggregate/semantics combination when
    exponential fallbacks are disabled.
    """


class EngineClosedError(EvaluationError, StorageError):
    """An operation was attempted on an engine whose backend was closed.

    Both an evaluation failure (the engine can no longer answer) and a
    storage failure (the backing database is gone), so handlers catching
    either — or plain :class:`ReproError` — see it.
    """


class IntractableError(EvaluationError):
    """The requested semantics cell has no PTIME algorithm.

    Raised by the planner when the caller asked for an exact answer in one of
    the cells the paper leaves open (e.g. by-tuple/distribution SUM) while
    forbidding the exponential fallback.  The caller may retry with
    ``allow_exponential=True`` or switch to the sampling estimator.
    """


class UnsupportedQueryError(ReproError):
    """The query shape is outside the supported aggregate-SQL subset."""


class ObservabilityError(ReproError):
    """A failure in the observability tooling (export, serving, query log).

    Never raised from the answer pipeline itself — telemetry must not
    fail queries — only from the explicitly-requested tooling around it
    (e.g. standing up a scrape endpoint).
    """


class MetricsExportError(ObservabilityError):
    """The Prometheus scrape endpoint could not be stood up.

    Typically the requested ``host:port`` is already in use or not
    bindable; ``host``/``port`` carry the attempted address.
    """

    def __init__(
        self,
        message: str,
        *,
        host: str | None = None,
        port: int | None = None,
    ) -> None:
        super().__init__(message)
        self.host = host
        self.port = port


class ServeError(ReproError):
    """A failure in the query service tier (:mod:`repro.serve`).

    Never raised from the library's embedded answer pipeline — only from
    the HTTP/JSON service wrapped around it: startup, admission control,
    request protocol, and drain.
    """


class ServiceStartupError(ServeError):
    """The query service could not bind or start its listening socket.

    The serving analogue of :class:`MetricsExportError`: typically the
    requested ``host:port`` is already in use or not bindable;
    ``host``/``port`` carry the attempted address.  ``repro-bench serve``
    maps it to its own exit code (15).
    """

    def __init__(
        self,
        message: str,
        *,
        host: str | None = None,
        port: int | None = None,
    ) -> None:
        super().__init__(message)
        self.host = host
        self.port = port


class ProtocolError(ServeError):
    """A malformed service request (bad HTTP framing, JSON, or fields).

    The service answers it with a 400-style typed JSON error rather than
    executing anything.
    """


class UnknownDatasetError(ServeError):
    """The request named a dataset the registry does not hold.

    ``dataset`` carries the requested name, ``known`` the registered
    ones, so the 404 response can say what *would* work.
    """

    def __init__(
        self,
        message: str,
        *,
        dataset: str | None = None,
        known: tuple[str, ...] = (),
    ) -> None:
        super().__init__(message)
        self.dataset = dataset
        self.known = tuple(known)


class ServiceOverloadedError(ServeError):
    """Admission control shed the request: the accept queue is full.

    The 429-style response: the service is up but saturated, and queueing
    further would only grow latency unboundedly.  ``in_flight`` /
    ``waiting`` / ``queue_depth`` snapshot the controller at shed time;
    ``retry_after_ms`` is a backoff hint for well-behaved clients.
    """

    def __init__(
        self,
        message: str,
        *,
        in_flight: int | None = None,
        waiting: int | None = None,
        queue_depth: int | None = None,
        retry_after_ms: float | None = None,
    ) -> None:
        super().__init__(message)
        self.in_flight = in_flight
        self.waiting = waiting
        self.queue_depth = queue_depth
        self.retry_after_ms = retry_after_ms


class ServiceDrainingError(ServeError):
    """The service is draining (shutdown requested) and admits no new work.

    The 503-style response: in-flight requests finish under the drain
    deadline, new ones should go to another replica.
    """


class AdmissionRejectedError(ServeError):
    """Admission control rejected a predictably-over-budget query.

    The plan-time cost estimate (:mod:`repro.core.cost`) already exceeds
    the tenant's budget on a dimension degradation cannot save, so the
    service refuses up front instead of burning the budget to learn the
    same thing.  ``resource`` names the dimension, ``estimate`` the
    plan-time prediction, ``limit`` the budget cap.
    """

    def __init__(
        self,
        message: str,
        *,
        resource: str | None = None,
        estimate: float | None = None,
        limit: float | None = None,
    ) -> None:
        super().__init__(message)
        self.resource = resource
        self.estimate = estimate
        self.limit = limit


def _rebuild_guardrail_error(cls, args, state):
    error = cls(*args)
    error.__dict__.update(state)
    return error


class GuardrailError(EvaluationError):
    """An execution guardrail stopped a query before it finished.

    Carries ``progress``: a structured snapshot of how far execution got
    before the guard fired (rows scanned, worlds enumerated, largest
    distribution support seen, elapsed milliseconds).  Subclasses say
    *which* guardrail fired; catching this type handles both.
    """

    def __init__(self, message: str, *, progress: dict | None = None) -> None:
        super().__init__(message)
        self.progress: dict = dict(progress or {})

    def __reduce__(self):
        # Keep the structured payload across process boundaries (the
        # parallel lane's workers raise these through pickle).
        return (_rebuild_guardrail_error, (type(self), self.args, self.__dict__))


class QueryTimeoutError(GuardrailError):
    """The query's wall-clock deadline expired before it finished.

    ``timeout_ms`` is the configured deadline; ``elapsed_ms`` the wall
    clock actually spent before the cooperative check noticed.
    """

    def __init__(
        self,
        message: str,
        *,
        timeout_ms: float | None = None,
        elapsed_ms: float | None = None,
        progress: dict | None = None,
    ) -> None:
        super().__init__(message, progress=progress)
        self.timeout_ms = timeout_ms
        self.elapsed_ms = elapsed_ms


class BudgetExceededError(GuardrailError):
    """A resource budget (rows, worlds, or support size) was exhausted.

    ``resource`` names the budget dimension (``"rows"``, ``"worlds"``,
    ``"support"``), ``limit`` its configured cap, and ``used`` the value
    that tripped it.
    """

    def __init__(
        self,
        message: str,
        *,
        resource: str | None = None,
        limit: int | None = None,
        used: int | None = None,
        progress: dict | None = None,
    ) -> None:
        super().__init__(message, progress=progress)
        self.resource = resource
        self.limit = limit
        self.used = used


#: Process exit codes per error class, most specific class first so
#: ``isinstance`` walks resolve subclasses before their bases
#: (EngineClosedError lands on StorageError's code, QueryTimeoutError
#: beats GuardrailError).  Shared by the CLI (its exit codes) and the
#: query service (the ``code`` field of typed JSON error responses), so
#: both surfaces name failure classes identically.  Code 1 is reserved
#: for shape-check failures, 2 for usage errors and errors outside this
#: table.
ERROR_EXIT_CODES: tuple[tuple[type, int], ...] = (
    (QueryTimeoutError, 10),
    (BudgetExceededError, 11),
    (GuardrailError, 12),
    (IntractableError, 9),
    (SQLSyntaxError, 3),
    (UnsupportedQueryError, 4),
    (SchemaError, 5),
    (MappingError, 6),
    (ReformulationError, 7),
    (StorageError, 8),
    (MetricsExportError, 14),
    (ServiceStartupError, 15),
    (ServeError, 16),
    (EvaluationError, 13),
)


def exit_code_for(error: BaseException) -> int:
    """The exit code for ``error`` (most specific ERROR_EXIT_CODES entry)."""
    for cls, code in ERROR_EXIT_CODES:
        if isinstance(error, cls):
            return code
    return 2
