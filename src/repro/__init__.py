"""repro — aggregate query answering under uncertain schema mappings.

A full reproduction of Gal, Martinez, Simari & Subrahmanian, *Aggregate
Query Answering under Uncertain Schema Mappings* (ICDE 2009): the six
query-answering semantics (by-table / by-tuple x range / distribution /
expected value), the PTIME algorithms of Section IV, the naive exponential
baseline, sampling estimators, a SQL subset with mapping-driven
reformulation, in-memory and SQLite execution substrates, workload
generators (including a second-price eBay auction simulator), and an
automatic top-K schema matcher that produces the probabilistic mappings the
paper assumes.

Quickstart::

    from repro import AggregationEngine
    from repro.data import realestate

    engine = AggregationEngine(
        [realestate.paper_instance()], realestate.paper_pmapping()
    )
    engine.answer(realestate.Q1, "by-tuple", "range")
    # RangeAnswer([1, 3])
"""

from repro.core.answers import (
    AggregateAnswer,
    BatchResult,
    DistributionAnswer,
    ExpectedValueAnswer,
    GroupedAnswer,
    RangeAnswer,
)
from repro.core.compile import CompiledQuery
from repro.core.engine import AggregationEngine
from repro.core.execute import ExecutionContext, PreparedQuery
from repro.core.guard import Budget
from repro.core.planner import ExecutionPlan, Lane, Planner, complexity_matrix
from repro.core.semantics import AggregateOp, AggregateSemantics, MappingSemantics
from repro.exceptions import (
    BudgetExceededError,
    EngineClosedError,
    EvaluationError,
    GuardrailError,
    IntractableError,
    MappingError,
    QueryTimeoutError,
    ReformulationError,
    ReproError,
    SchemaError,
    SQLSyntaxError,
    StorageError,
    UnsupportedQueryError,
)
from repro.prob.distribution import DiscreteDistribution
from repro.schema.correspondence import AttributeCorrespondence
from repro.schema.mapping import PMapping, RelationMapping, SchemaPMapping
from repro.schema.matcher import MatcherConfig, SchemaMatcher
from repro.schema.model import Attribute, AttributeType, Relation, Schema
from repro.sql.parser import parse_query
from repro.storage.sqlite_backend import SQLiteBackend
from repro.storage.table import Table

__version__ = "1.0.0"

__all__ = [
    "AggregateAnswer",
    "AggregateOp",
    "AggregateSemantics",
    "AggregationEngine",
    "Attribute",
    "AttributeCorrespondence",
    "AttributeType",
    "BatchResult",
    "Budget",
    "BudgetExceededError",
    "CompiledQuery",
    "DiscreteDistribution",
    "DistributionAnswer",
    "EngineClosedError",
    "EvaluationError",
    "GuardrailError",
    "ExecutionContext",
    "ExecutionPlan",
    "ExpectedValueAnswer",
    "GroupedAnswer",
    "IntractableError",
    "Lane",
    "MappingError",
    "MatcherConfig",
    "MappingSemantics",
    "PMapping",
    "Planner",
    "PreparedQuery",
    "QueryTimeoutError",
    "RangeAnswer",
    "ReformulationError",
    "Relation",
    "RelationMapping",
    "ReproError",
    "SQLiteBackend",
    "SQLSyntaxError",
    "Schema",
    "SchemaError",
    "SchemaMatcher",
    "SchemaPMapping",
    "StorageError",
    "Table",
    "UnsupportedQueryError",
    "complexity_matrix",
    "parse_query",
]
