"""The paper's Example 2: eBay auctions with an uncertain price attribute.

Source schema ``S2`` records second-price auction activity; the mediated
schema ``T2`` has a ``price`` attribute that may correspond to ``bid``
(mapping ``m21``, probability 0.3) or ``currentPrice`` (mapping ``m22``,
probability 0.7).  ``transactionID`` → ``transaction``, ``auction`` →
``auctionID`` and ``time`` → ``timeUpdate`` are known.

:func:`paper_instance` is the exact Table II instance (two auctions, four
bids each).  :func:`generate_auctions` is the substitute for the paper's
real eBay trace (1,129 3-day laptop auctions, 155,688 bids — about 138
bids per auction): a faithful second-price process where the listed
``currentPrice`` trails the winning ``bid`` by one increment, preserving
exactly the bid/currentPrice ambiguity the p-mapping models.
"""

from __future__ import annotations

import random

from repro.schema.correspondence import AttributeCorrespondence
from repro.schema.mapping import PMapping, RelationMapping
from repro.schema.model import Attribute, AttributeType, Relation
from repro.storage.table import Table

#: Source schema S2 (paper Example 2).
S2_RELATION = Relation(
    "S2",
    [
        Attribute("transactionID", AttributeType.INT),
        Attribute("auction", AttributeType.INT),
        Attribute("time", AttributeType.REAL),
        Attribute("bid", AttributeType.REAL),
        Attribute("currentPrice", AttributeType.REAL),
    ],
)

#: Mediated schema T2 (paper Example 2).
T2_RELATION = Relation(
    "T2",
    [
        Attribute("transaction", AttributeType.INT),
        Attribute("auctionID", AttributeType.INT),
        Attribute("timeUpdate", AttributeType.REAL),
        Attribute("price", AttributeType.REAL),
    ],
)

#: Query Q2 (paper Example 2): the average closing price of all auctions.
Q2 = (
    "SELECT AVG(R1.price) FROM "
    "(SELECT MAX(DISTINCT R2.price) FROM T2 AS R2 GROUP BY R2.auctionID) AS R1"
)

#: Query Q2' (paper Section IV-B): total price over auction 34.
Q2_PRIME = "SELECT SUM(price) FROM T2 WHERE auctionID = 34"

#: The inner subquery of Q2 on its own (per-auction closing price).
Q2_INNER = "SELECT MAX(DISTINCT price) FROM T2 GROUP BY auctionID"

_KNOWN_CORRESPONDENCES = [
    AttributeCorrespondence("transactionID", "transaction"),
    AttributeCorrespondence("auction", "auctionID"),
    AttributeCorrespondence("time", "timeUpdate"),
]


def mapping_m21() -> RelationMapping:
    """Mapping m21: ``bid`` supplies ``price``."""
    return RelationMapping(
        S2_RELATION,
        T2_RELATION,
        _KNOWN_CORRESPONDENCES + [AttributeCorrespondence("bid", "price")],
        name="m21",
    )


def mapping_m22() -> RelationMapping:
    """Mapping m22: ``currentPrice`` supplies ``price``."""
    return RelationMapping(
        S2_RELATION,
        T2_RELATION,
        _KNOWN_CORRESPONDENCES + [AttributeCorrespondence("currentPrice", "price")],
        name="m22",
    )


def paper_pmapping(p_bid: float = 0.3, p_current: float = 0.7) -> PMapping:
    """The Example 2 p-mapping, by default ``P(m21)=0.3``, ``P(m22)=0.7``."""
    return PMapping(
        S2_RELATION,
        T2_RELATION,
        [(mapping_m21(), p_bid), (mapping_m22(), p_current)],
    )


def paper_instance() -> Table:
    """The exact DS2 instance of the paper's Table II."""
    return Table(
        S2_RELATION,
        [
            (3401, 34, 0.43, 195.0, 195.0),
            (3402, 34, 2.75, 200.0, 197.5),
            (3403, 34, 2.80, 331.94, 202.5),
            (3404, 34, 2.85, 349.99, 336.94),
            (3801, 38, 1.16, 330.01, 300.0),
            (3802, 38, 2.67, 429.95, 335.01),
            (3803, 38, 2.68, 439.95, 336.30),
            (3804, 38, 2.82, 340.5, 438.05),
        ],
    )


def generate_auctions(
    num_auctions: int,
    *,
    mean_bids: float = 138.0,
    duration_days: float = 3.0,
    seed: int = 0,
    min_bids: int = 2,
    increment: float = 2.5,
) -> Table:
    """Simulate ``num_auctions`` second-price (proxy-bidding) auctions.

    Each auction draws a starting price from a lognormal around laptop
    territory and a bid count around ``mean_bids`` (geometric-ish spread).
    Proxy bidding is modelled the eBay way: the system tracks the highest
    and second-highest proxy bids, and the *listed* ``currentPrice`` is the
    second-highest bid plus one increment, capped at the highest bid — so
    ``currentPrice`` systematically trails ``bid``, exactly the semantic
    confusion the p-mapping captures.

    Transaction ids follow the paper's convention (auction 34 has
    transactions 3401, 3402, ...) widened to five digits per auction so the
    heavy tail of the bid-count distribution cannot collide across
    auctions.
    """
    rng = random.Random(seed)
    rows: list[tuple] = []
    for auction_number in range(1, num_auctions + 1):
        auction_id = auction_number + 30  # paper-style ids: 34, 38, ...
        start_price = round(rng.lognormvariate(5.3, 0.6), 2)
        bid_count = max(min_bids, int(rng.expovariate(1.0 / mean_bids)) + 1)
        times = sorted(
            round(rng.uniform(0.0, duration_days), 4) for _ in range(bid_count)
        )
        highest = start_price
        second = start_price
        for sequence_number, time in enumerate(times, start=1):
            # A new proxy bid must beat the listed price; bidders overshoot
            # by a lognormal factor.
            listed = min(highest, second + increment)
            bid = round(listed + rng.lognormvariate(2.0, 1.0), 2)
            if bid > highest:
                second = highest
                highest = bid
            elif bid > second:
                second = bid
            listed_after = round(min(highest, second + increment), 2)
            rows.append(
                (
                    auction_id * 100_000 + sequence_number,
                    auction_id,
                    time,
                    bid,
                    listed_after,
                )
            )
    return Table(S2_RELATION, rows)


def auction_prefix(table: Table, num_tuples: int) -> Table:
    """The first ``num_tuples`` rows — the paper's Figure 7 grows the input
    auction by auction, which a prefix of the bid stream reproduces."""
    return table.head(num_tuples)
