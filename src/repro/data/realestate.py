"""The paper's Example 1: real-estate listings with an uncertain date.

Source schema ``S1`` holds properties for sale; the mediated schema ``T1``
has a single ``date`` attribute that may correspond to either
``postedDate`` (mapping ``m11``, probability 0.6) or ``reducedDate``
(mapping ``m12``, probability 0.4).  The other correspondences (``ID`` →
``propertyID``, ``price`` → ``listPrice``, ``agentPhone`` → ``phone``) are
known, and nothing maps to ``comments``.

:func:`paper_instance` returns the exact Table I instance;
:func:`generate_listings` produces arbitrarily large synthetic instances of
the same shape.

Note: the paper's Table III reports the by-table answers to Q1 as
``3 (prob 0.6), 2 (prob 0.4)``, but on its own Table I instance the
``reducedDate`` reformulation matches only one row (1/10/2008); the answer
consistent with the instance — and with the paper's own by-tuple numbers —
is ``3 (0.6), 1 (0.4)``.  EXPERIMENTS.md discusses the discrepancy.
"""

from __future__ import annotations

import datetime
import random

from repro.schema.correspondence import AttributeCorrespondence
from repro.schema.mapping import PMapping, RelationMapping
from repro.schema.model import Attribute, AttributeType, Relation
from repro.storage.table import Table

#: Source schema S1 (paper Example 1).
S1_RELATION = Relation(
    "S1",
    [
        Attribute("ID", AttributeType.INT),
        Attribute("price", AttributeType.REAL),
        Attribute("agentPhone", AttributeType.TEXT),
        Attribute("postedDate", AttributeType.DATE),
        Attribute("reducedDate", AttributeType.DATE),
    ],
)

#: Mediated schema T1 (paper Example 1).
T1_RELATION = Relation(
    "T1",
    [
        Attribute("propertyID", AttributeType.INT),
        Attribute("listPrice", AttributeType.REAL),
        Attribute("phone", AttributeType.TEXT),
        Attribute("date", AttributeType.DATE),
        Attribute("comments", AttributeType.TEXT),
    ],
)

#: Query Q1 (paper Example 1): properties listed for more than a month as of
#: February 20, 2008.
Q1 = "SELECT COUNT(*) FROM T1 WHERE date < '2008-1-20'"

_KNOWN_CORRESPONDENCES = [
    AttributeCorrespondence("ID", "propertyID"),
    AttributeCorrespondence("price", "listPrice"),
    AttributeCorrespondence("agentPhone", "phone"),
]


def mapping_m11() -> RelationMapping:
    """Mapping m11: ``postedDate`` supplies ``date``."""
    return RelationMapping(
        S1_RELATION,
        T1_RELATION,
        _KNOWN_CORRESPONDENCES + [AttributeCorrespondence("postedDate", "date")],
        name="m11",
    )


def mapping_m12() -> RelationMapping:
    """Mapping m12: ``reducedDate`` supplies ``date``."""
    return RelationMapping(
        S1_RELATION,
        T1_RELATION,
        _KNOWN_CORRESPONDENCES + [AttributeCorrespondence("reducedDate", "date")],
        name="m12",
    )


def paper_pmapping(
    p_posted: float = 0.6, p_reduced: float = 0.4
) -> PMapping:
    """The Example 1 p-mapping, by default ``P(m11)=0.6``, ``P(m12)=0.4``."""
    return PMapping(
        S1_RELATION,
        T1_RELATION,
        [(mapping_m11(), p_posted), (mapping_m12(), p_reduced)],
    )


def paper_instance() -> Table:
    """The exact DS1 instance of the paper's Table I."""
    return Table(
        S1_RELATION,
        [
            (1, 100_000.0, "215", datetime.date(2008, 1, 5), datetime.date(2008, 1, 30)),
            (2, 150_000.0, "342", datetime.date(2008, 1, 30), datetime.date(2008, 2, 15)),
            (3, 200_000.0, "215", datetime.date(2008, 1, 1), datetime.date(2008, 1, 10)),
            (4, 100_000.0, "337", datetime.date(2008, 1, 2), datetime.date(2008, 2, 1)),
        ],
    )


def generate_listings(
    num_listings: int,
    *,
    seed: int = 0,
    start: datetime.date = datetime.date(2008, 1, 1),
    posting_window_days: int = 60,
    reduction_probability: float = 0.7,
) -> Table:
    """Generate a synthetic S1 instance of ``num_listings`` rows.

    Prices follow a lognormal around a $250k median; each listing is posted
    uniformly inside the posting window, and with ``reduction_probability``
    its price is reduced 5-30 days after posting (otherwise the reduction
    date falls outside any query window, mimicking listings that were never
    reduced while keeping the column NOT NULL like the paper's instance).
    """
    rng = random.Random(seed)
    rows = []
    for listing_id in range(1, num_listings + 1):
        price = round(rng.lognormvariate(12.43, 0.45), 2)
        phone = f"{rng.randint(200, 999)}"
        posted = start + datetime.timedelta(days=rng.randrange(posting_window_days))
        if rng.random() < reduction_probability:
            reduced = posted + datetime.timedelta(days=rng.randint(5, 30))
        else:
            reduced = start + datetime.timedelta(days=posting_window_days + 365)
        rows.append((listing_id, price, phone, posted, reduced))
    return Table(S1_RELATION, rows)
