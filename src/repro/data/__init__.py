"""Workload generators and the paper's running-example instances.

* :mod:`repro.data.realestate` — Example 1 (schemas S1/T1, Table I, the
  m11/m12 p-mapping, query Q1) plus a generator of synthetic listings;
* :mod:`repro.data.ebay` — Example 2 (schemas S2/T2, Table II, the m21/m22
  p-mapping, queries Q2 and Q2'), plus a second-price auction simulator
  standing in for the paper's real eBay trace;
* :mod:`repro.data.synthetic` — the Section V synthetic setup: random real
  columns and randomly generated p-mappings over attribute subsets.
"""

from repro.data import ebay, realestate, synthetic

__all__ = ["ebay", "realestate", "synthetic"]
