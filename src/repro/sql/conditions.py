"""Compile WHERE-clause conditions into Python predicates over rows.

The by-tuple algorithms evaluate the selection condition once per tuple per
mapping, so the condition is compiled *once* into a closure tree and then
applied to each row — no per-row AST walking.

Evaluation follows SQL's three-valued logic internally (``None`` = unknown,
arising from NULLs); the compiled top-level predicate collapses unknown to
``False``, matching the behaviour of a WHERE clause, which only keeps rows
whose condition is *true*.

Literals are coerced against column types at compile time: comparing a DATE
column with the string ``'2008-1-20'`` (the paper's non-zero-padded style)
compares actual dates, not strings.
"""

from __future__ import annotations

import re
from collections.abc import Callable

from repro.exceptions import EvaluationError
from repro.schema.model import AttributeType, Relation
from repro.sql.ast import (
    BetweenPredicate,
    BooleanCondition,
    ColumnRef,
    Comparison,
    Condition,
    InPredicate,
    IsNullPredicate,
    LikePredicate,
    Literal,
    NotCondition,
    Operand,
    parse_flexible_date,
)
from repro.storage.table import Row

#: A compiled predicate: row -> bool (unknown already collapsed to False).
RowPredicate = Callable[[Row], bool]

#: Internal tri-state evaluator: row -> True | False | None.
_TriPredicate = Callable[[Row], bool | None]


def compile_condition(
    condition: Condition | None,
    relation: Relation,
    binding_name: str | None = None,
) -> RowPredicate:
    """Compile ``condition`` into a fast predicate over rows of ``relation``.

    Parameters
    ----------
    condition:
        The WHERE clause; ``None`` compiles to an always-true predicate.
    relation:
        The relation whose rows will be tested; used to resolve column names
        and coerce literals.
    binding_name:
        The name (table name or alias) that column qualifiers must match;
        defaults to the relation's own name.

    Examples
    --------
    >>> from repro.sql.parser import parse_condition       # doctest: +SKIP
    >>> pred = compile_condition(
    ...     parse_condition("price >= 150000"), s1)        # doctest: +SKIP
    >>> pred(row)                                          # doctest: +SKIP
    True
    """
    if condition is None:
        return lambda row: True
    binding = binding_name or relation.name
    tri = _compile(condition, relation, binding)
    return lambda row: tri(row) is True


def _compile(
    condition: Condition, relation: Relation, binding: str
) -> _TriPredicate:
    if isinstance(condition, Comparison):
        return _compile_comparison(condition, relation, binding)
    if isinstance(condition, BooleanCondition):
        parts = [_compile(c, relation, binding) for c in condition.operands]
        if condition.operator == "AND":
            return _make_and(parts)
        return _make_or(parts)
    if isinstance(condition, NotCondition):
        inner = _compile(condition.operand, relation, binding)

        def negate(row: Row) -> bool | None:
            value = inner(row)
            return None if value is None else not value

        return negate
    if isinstance(condition, BetweenPredicate):
        return _compile_between(condition, relation, binding)
    if isinstance(condition, InPredicate):
        return _compile_in(condition, relation, binding)
    if isinstance(condition, IsNullPredicate):
        getter = _compile_operand(condition.operand, relation, binding, None)
        if condition.negated:
            return lambda row: getter(row) is not None
        return lambda row: getter(row) is None
    if isinstance(condition, LikePredicate):
        return _compile_like(condition, relation, binding)
    raise EvaluationError(f"cannot compile condition node {condition!r}")


def _make_and(parts: list[_TriPredicate]) -> _TriPredicate:
    def conjunction(row: Row) -> bool | None:
        saw_unknown = False
        for part in parts:
            value = part(row)
            if value is False:
                return False
            if value is None:
                saw_unknown = True
        return None if saw_unknown else True

    return conjunction


def _make_or(parts: list[_TriPredicate]) -> _TriPredicate:
    def disjunction(row: Row) -> bool | None:
        saw_unknown = False
        for part in parts:
            value = part(row)
            if value is True:
                return True
            if value is None:
                saw_unknown = True
        return None if saw_unknown else False

    return disjunction


# -- operands ---------------------------------------------------------------


def _resolve_column(ref: ColumnRef, relation: Relation, binding: str) -> int:
    if ref.qualifier is not None and ref.qualifier != binding:
        raise EvaluationError(
            f"column qualifier {ref.qualifier!r} does not match the FROM "
            f"binding {binding!r}"
        )
    if ref.name not in relation:
        raise EvaluationError(
            f"relation {relation.name!r} has no column {ref.name!r} "
            f"(has: {', '.join(relation.attribute_names)})"
        )
    return relation.index_of(ref.name)


def _column_type(
    operand: Operand, relation: Relation, binding: str
) -> AttributeType | None:
    if isinstance(operand, ColumnRef):
        _resolve_column(operand, relation, binding)
        return relation.attribute(operand.name).type
    return None


def _coerce_literal(value: object, target: AttributeType | None) -> object:
    """Coerce a literal toward the column type it is compared with."""
    if target is None or value is None:
        return value
    if target is AttributeType.DATE and isinstance(value, str):
        parsed = parse_flexible_date(value)
        if parsed is None:
            raise EvaluationError(
                f"cannot interpret {value!r} as a date for comparison with "
                "a DATE column"
            )
        return parsed
    if target is AttributeType.REAL and isinstance(value, int):
        return float(value)
    if target is AttributeType.INT and isinstance(value, float):
        # Keep floats intact: 3.5 = int_column must compare unequal, not
        # truncate.  Python compares int/float natively.
        return value
    if target in (AttributeType.INT, AttributeType.REAL) and isinstance(value, str):
        raise EvaluationError(
            f"cannot compare numeric column with string literal {value!r}"
        )
    if target is AttributeType.TEXT and not isinstance(value, str):
        return str(value)
    return value


def _compile_operand(
    operand: Operand,
    relation: Relation,
    binding: str,
    peer_type: AttributeType | None,
) -> Callable[[Row], object]:
    """Compile a comparison operand into a value getter.

    ``peer_type`` is the column type on the *other* side of the comparison,
    used to coerce literals (e.g. date strings).
    """
    if isinstance(operand, ColumnRef):
        index = _resolve_column(operand, relation, binding)
        return lambda row: row.as_tuple()[index]
    if isinstance(operand, Literal):
        value = _coerce_literal(operand.value, peer_type)
        return lambda row: value
    raise EvaluationError(f"cannot compile operand {operand!r}")


_COMPARATORS: dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _compile_comparison(
    condition: Comparison, relation: Relation, binding: str
) -> _TriPredicate:
    left_type = _column_type(condition.left, relation, binding)
    right_type = _column_type(condition.right, relation, binding)
    left = _compile_operand(condition.left, relation, binding, right_type)
    right = _compile_operand(condition.right, relation, binding, left_type)
    compare = _COMPARATORS[condition.operator]

    def predicate(row: Row) -> bool | None:
        a = left(row)
        b = right(row)
        if a is None or b is None:
            return None
        try:
            return compare(a, b)
        except TypeError as exc:
            raise EvaluationError(
                f"cannot compare {a!r} with {b!r} in "
                f"{condition.to_sql()!r}"
            ) from exc

    return predicate


def _compile_between(
    condition: BetweenPredicate, relation: Relation, binding: str
) -> _TriPredicate:
    operand_type = _column_type(condition.operand, relation, binding)
    # BETWEEN bounds borrow the tested operand's column type for coercion.
    operand = _compile_operand(condition.operand, relation, binding, None)
    low = _compile_operand(condition.low, relation, binding, operand_type)
    high = _compile_operand(condition.high, relation, binding, operand_type)

    def predicate(row: Row) -> bool | None:
        value = operand(row)
        lo = low(row)
        hi = high(row)
        if value is None or lo is None or hi is None:
            return None
        result = lo <= value <= hi
        return not result if condition.negated else result

    return predicate


def _compile_in(
    condition: InPredicate, relation: Relation, binding: str
) -> _TriPredicate:
    operand_type = _column_type(condition.operand, relation, binding)
    operand = _compile_operand(condition.operand, relation, binding, None)
    values = frozenset(
        _coerce_literal(literal.value, operand_type)
        for literal in condition.values
    )

    def predicate(row: Row) -> bool | None:
        value = operand(row)
        if value is None:
            return None
        result = value in values
        return not result if condition.negated else result

    return predicate


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    """Translate a SQL LIKE pattern into an anchored regex."""
    out: list[str] = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def _compile_like(
    condition: LikePredicate, relation: Relation, binding: str
) -> _TriPredicate:
    operand = _compile_operand(condition.operand, relation, binding, None)
    regex = _like_to_regex(condition.pattern)

    def predicate(row: Row) -> bool | None:
        value = operand(row)
        if value is None:
            return None
        result = regex.match(str(value)) is not None
        return not result if condition.negated else result

    return predicate
