"""Render queries to SQL executable by the SQLite backend.

Two adjustments separate the paper's loose SQL from something SQLite will
run:

1. **Date literals.**  The paper compares DATE columns against strings like
   ``'2008-1-20'``; the backend stores dates as zero-padded ISO-8601 TEXT,
   so such literals must be normalized (``'2008-01-20'``) or string
   comparison would be wrong.

2. **Nested column naming.**  The paper's Q2 writes ``AVG(R1.price)`` over a
   subquery whose only column is ``MAX(DISTINCT R2.price)`` — valid in
   spirit, invalid in strict SQL.  We render the inner aggregate with the
   alias ``__agg`` and point the outer argument at it.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.exceptions import StorageError, UnsupportedQueryError
from repro.schema.model import AttributeType, Relation
from repro.sql.ast import (
    AggregateQuery,
    BetweenPredicate,
    BooleanCondition,
    ColumnRef,
    Comparison,
    Condition,
    InPredicate,
    IsNullPredicate,
    LikePredicate,
    Literal,
    NotCondition,
    Operand,
    SubquerySource,
    parse_flexible_date,
)

#: Alias given to the aggregate column of a nested inner query.
INNER_AGGREGATE_ALIAS = "__agg"


def executable_sql(
    query: AggregateQuery, catalog: Mapping[str, Relation]
) -> str:
    """Render ``query`` (already reformulated onto source relations) to SQL.

    ``catalog`` maps relation names to their schemas, used to locate DATE
    columns for literal normalization.  Handles at most one level of FROM
    nesting, like the rest of the library.
    """
    if isinstance(query.source, SubquerySource):
        inner = query.source.query
        if isinstance(inner.source, SubquerySource):
            raise UnsupportedQueryError(
                "queries nested more than one level are not supported"
            )
        if query.where is not None or query.group_by is not None:
            raise UnsupportedQueryError(
                "WHERE/GROUP BY on the outer query of a nested aggregate "
                "is not supported"
            )
        inner_sql = _level_sql(inner, catalog, select_alias=INNER_AGGREGATE_ALIAS)
        alias = query.source.alias
        argument = ColumnRef(INNER_AGGREGATE_ALIAS, qualifier=alias)
        distinct = "DISTINCT " if query.aggregate.distinct else ""
        return (
            f"SELECT {query.aggregate.op.value}({distinct}{argument.to_sql()}) "
            f"FROM ({inner_sql}) AS {alias}"
        )
    return _level_sql(query, catalog, select_alias=None)


def _level_sql(
    query: AggregateQuery,
    catalog: Mapping[str, Relation],
    select_alias: str | None,
) -> str:
    name = query.source.name
    try:
        relation = catalog[name]
    except KeyError:
        raise StorageError(f"unknown relation {name!r} in query") from None
    select = query.aggregate.to_sql()
    if select_alias:
        select = f"{select} AS {select_alias}"
    if query.group_by is not None:
        # Grouped results need their group key in the output row.
        select = f"{query.group_by.to_sql()}, {select}"
    parts = [f"SELECT {select}", f"FROM {query.source.to_sql()}"]
    if query.where is not None:
        binding = query.source.binding_name
        normalized = normalize_literals(query.where, relation, binding)
        parts.append(f"WHERE {normalized.to_sql()}")
    if query.group_by is not None:
        parts.append(f"GROUP BY {query.group_by.to_sql()}")
    return " ".join(parts)


def normalize_literals(
    condition: Condition, relation: Relation, binding: str
) -> Condition:
    """Normalize date-string literals compared against DATE columns.

    Returns a new condition in which every string literal that is compared
    with a DATE column is replaced by its zero-padded ISO form, so that
    SQLite's lexicographic TEXT comparison orders the dates correctly.
    """
    if isinstance(condition, Comparison):
        left_type = _operand_type(condition.left, relation, binding)
        right_type = _operand_type(condition.right, relation, binding)
        return Comparison(
            _normalize_operand(condition.left, right_type),
            condition.operator,
            _normalize_operand(condition.right, left_type),
        )
    if isinstance(condition, BooleanCondition):
        return BooleanCondition(
            condition.operator,
            [normalize_literals(c, relation, binding) for c in condition.operands],
        )
    if isinstance(condition, NotCondition):
        return NotCondition(normalize_literals(condition.operand, relation, binding))
    if isinstance(condition, BetweenPredicate):
        operand_type = _operand_type(condition.operand, relation, binding)
        return BetweenPredicate(
            condition.operand,
            _normalize_operand(condition.low, operand_type),
            _normalize_operand(condition.high, operand_type),
            condition.negated,
        )
    if isinstance(condition, InPredicate):
        operand_type = _operand_type(condition.operand, relation, binding)
        return InPredicate(
            condition.operand,
            [_normalize_operand(v, operand_type) for v in condition.values],
            condition.negated,
        )
    if isinstance(condition, (IsNullPredicate, LikePredicate)):
        return condition
    raise UnsupportedQueryError(f"cannot render condition node {condition!r}")


def _operand_type(
    operand: Operand, relation: Relation, binding: str
) -> AttributeType | None:
    if isinstance(operand, ColumnRef):
        if operand.qualifier is not None and operand.qualifier != binding:
            raise StorageError(
                f"column qualifier {operand.qualifier!r} does not match the "
                f"FROM binding {binding!r}"
            )
        if operand.name in relation:
            return relation.attribute(operand.name).type
    return None


def _normalize_operand(operand: Operand, peer_type: AttributeType | None):
    if (
        isinstance(operand, Literal)
        and peer_type is AttributeType.DATE
        and isinstance(operand.value, str)
    ):
        parsed = parse_flexible_date(operand.value)
        if parsed is not None:
            return Literal(parsed)
    return operand
