"""A small SQL dialect for aggregate queries.

The paper works with aggregate queries of the shape::

    SELECT Agg([DISTINCT] A) FROM T [WHERE C] [GROUP BY B]

optionally nested one level, as in its query Q2::

    SELECT AVG(R1.price)
    FROM (SELECT MAX(DISTINCT R2.price) FROM T2 AS R2
          GROUP BY R2.auctionId) AS R1

This package provides a lexer, recursive-descent parser, an AST that can
render itself back to SQL (including a SQLite dialect used by the by-table
execution path), a condition compiler that turns WHERE clauses into fast
Python predicates over source rows, and the mapping-driven reformulator that
rewrites a query posed on the mediated schema into one per candidate mapping
(the step Figure 1 of the paper calls "reformulate").
"""

from repro.sql.ast import (
    AggregateCall,
    AggregateOp,
    AggregateQuery,
    BetweenPredicate,
    BooleanCondition,
    ColumnRef,
    Comparison,
    Condition,
    InPredicate,
    IsNullPredicate,
    Literal,
    NotCondition,
    SubquerySource,
    TableSource,
)
from repro.sql.conditions import compile_condition
from repro.sql.parser import parse_query
from repro.sql.reformulate import reformulate_condition, reformulate_query

__all__ = [
    "AggregateCall",
    "AggregateOp",
    "AggregateQuery",
    "BetweenPredicate",
    "BooleanCondition",
    "ColumnRef",
    "Comparison",
    "Condition",
    "InPredicate",
    "IsNullPredicate",
    "Literal",
    "NotCondition",
    "SubquerySource",
    "TableSource",
    "compile_condition",
    "parse_query",
    "reformulate_condition",
    "reformulate_query",
]
