"""Recursive-descent parser for the aggregate-SQL subset.

Grammar (keywords case-insensitive)::

    query      :=  SELECT agg FROM source [WHERE condition] [GROUP BY column]
    agg        :=  (COUNT|SUM|AVG|MIN|MAX) '(' [DISTINCT] (column | '*') ')'
    source     :=  identifier [AS identifier]
                |  '(' query ')' AS identifier
    condition  :=  or_expr
    or_expr    :=  and_expr (OR and_expr)*
    and_expr   :=  not_expr (AND not_expr)*
    not_expr   :=  NOT not_expr | primary
    primary    :=  '(' condition ')'
                |  operand comparison
    comparison :=  cmp_op operand
                |  [NOT] BETWEEN operand AND operand
                |  [NOT] IN '(' literal (',' literal)* ')'
                |  IS [NOT] NULL
                |  [NOT] LIKE string
    operand    :=  column | literal
    column     :=  identifier ['.' identifier]

Only literal operands are allowed inside BETWEEN/IN bounds on the grammar
level where SQL would allow expressions; the paper's queries never need
more.
"""

from __future__ import annotations

from repro.exceptions import SQLSyntaxError
from repro.sql.ast import (
    AggregateCall,
    AggregateOp,
    AggregateQuery,
    BetweenPredicate,
    BooleanCondition,
    ColumnRef,
    Comparison,
    Condition,
    InPredicate,
    IsNullPredicate,
    LikePredicate,
    Literal,
    NotCondition,
    Operand,
    SubquerySource,
    TableSource,
)
from repro.sql.lexer import Token, TokenType, tokenize

_AGGREGATE_KEYWORDS = {op.value for op in AggregateOp}


def parse_query(text: str) -> AggregateQuery:
    """Parse SQL text into an :class:`AggregateQuery`.

    Raises
    ------
    SQLSyntaxError
        When the text is not a well-formed query in the subset.

    Examples
    --------
    >>> q = parse_query("SELECT SUM(price) FROM T2 WHERE auctionID = 34")
    >>> q.aggregate.op.value, q.source.name
    ('SUM', 'T2')
    """
    parser = _Parser(tokenize(text))
    query = parser.parse_query()
    parser.expect_end()
    return query


def parse_condition(text: str) -> Condition:
    """Parse a standalone WHERE-clause condition (used in tests/tools)."""
    parser = _Parser(tokenize(text))
    condition = parser.parse_condition()
    parser.expect_end()
    return condition


class _Parser:
    """Token-stream cursor with one-token lookahead."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- cursor helpers ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.END:
            self._index += 1
        return token

    def accept(self, type: TokenType, value: object = None) -> Token | None:
        if self.current.matches(type, value):
            return self.advance()
        return None

    def expect(self, type: TokenType, value: object = None) -> Token:
        token = self.accept(type, value)
        if token is None:
            wanted = value if value is not None else type.value
            raise SQLSyntaxError(
                f"expected {wanted}, found {self.current.value!r}",
                position=self.current.position,
            )
        return token

    def expect_end(self) -> None:
        if self.current.type is not TokenType.END:
            raise SQLSyntaxError(
                f"unexpected trailing input {self.current.value!r}",
                position=self.current.position,
            )

    # -- grammar -----------------------------------------------------------

    def parse_query(self) -> AggregateQuery:
        self.expect(TokenType.KEYWORD, "SELECT")
        aggregate = self._parse_aggregate_call()
        self.expect(TokenType.KEYWORD, "FROM")
        source = self._parse_source()
        where = None
        if self.accept(TokenType.KEYWORD, "WHERE"):
            where = self.parse_condition()
        group_by = None
        if self.accept(TokenType.KEYWORD, "GROUP"):
            self.expect(TokenType.KEYWORD, "BY")
            group_by = self._parse_column()
        return AggregateQuery(aggregate, source, where, group_by)

    def _parse_aggregate_call(self) -> AggregateCall:
        token = self.current
        if token.type is not TokenType.KEYWORD or token.value not in _AGGREGATE_KEYWORDS:
            raise SQLSyntaxError(
                f"expected an aggregate function, found {token.value!r}",
                position=token.position,
            )
        self.advance()
        op = AggregateOp(token.value)
        self.expect(TokenType.PUNCTUATION, "(")
        distinct = bool(self.accept(TokenType.KEYWORD, "DISTINCT"))
        if self.accept(TokenType.PUNCTUATION, "*"):
            argument = None
        else:
            argument = self._parse_column()
        self.expect(TokenType.PUNCTUATION, ")")
        return AggregateCall(op, argument, distinct)

    def _parse_source(self) -> TableSource | SubquerySource:
        if self.accept(TokenType.PUNCTUATION, "("):
            query = self.parse_query()
            self.expect(TokenType.PUNCTUATION, ")")
            self.expect(TokenType.KEYWORD, "AS")
            alias = self.expect(TokenType.IDENTIFIER).value
            return SubquerySource(query, str(alias))
        name = str(self.expect(TokenType.IDENTIFIER).value)
        alias = None
        if self.accept(TokenType.KEYWORD, "AS"):
            alias = str(self.expect(TokenType.IDENTIFIER).value)
        elif self.current.type is TokenType.IDENTIFIER:
            # SQL allows the AS keyword to be omitted: FROM T2 R2
            alias = str(self.advance().value)
        return TableSource(name, alias)

    def _parse_column(self) -> ColumnRef:
        first = str(self.expect(TokenType.IDENTIFIER).value)
        if self.accept(TokenType.PUNCTUATION, "."):
            second = str(self.expect(TokenType.IDENTIFIER).value)
            return ColumnRef(second, qualifier=first)
        return ColumnRef(first)

    # -- conditions ---------------------------------------------------------

    def parse_condition(self) -> Condition:
        return self._parse_or()

    def _parse_or(self) -> Condition:
        operands = [self._parse_and()]
        while self.accept(TokenType.KEYWORD, "OR"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return BooleanCondition("OR", operands)

    def _parse_and(self) -> Condition:
        operands = [self._parse_not()]
        while self.accept(TokenType.KEYWORD, "AND"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return BooleanCondition("AND", operands)

    def _parse_not(self) -> Condition:
        if self.accept(TokenType.KEYWORD, "NOT"):
            return NotCondition(self._parse_not())
        return self._parse_primary()

    def _parse_primary(self) -> Condition:
        if self.current.matches(TokenType.PUNCTUATION, "("):
            # Could be a parenthesized condition; literals never start with
            # '(', so this is unambiguous in this grammar.
            self.advance()
            condition = self.parse_condition()
            self.expect(TokenType.PUNCTUATION, ")")
            return condition
        operand = self._parse_operand()
        return self._parse_comparison_tail(operand)

    def _parse_comparison_tail(self, operand: Operand) -> Condition:
        negated = bool(self.accept(TokenType.KEYWORD, "NOT"))
        if self.current.type is TokenType.OPERATOR:
            if negated:
                raise SQLSyntaxError(
                    "NOT cannot directly precede a comparison operator",
                    position=self.current.position,
                )
            operator = str(self.advance().value)
            right = self._parse_operand()
            return Comparison(operand, operator, right)
        if self.accept(TokenType.KEYWORD, "BETWEEN"):
            low = self._parse_operand()
            self.expect(TokenType.KEYWORD, "AND")
            high = self._parse_operand()
            return BetweenPredicate(operand, low, high, negated)
        if self.accept(TokenType.KEYWORD, "IN"):
            self.expect(TokenType.PUNCTUATION, "(")
            values = [self._parse_literal()]
            while self.accept(TokenType.PUNCTUATION, ","):
                values.append(self._parse_literal())
            self.expect(TokenType.PUNCTUATION, ")")
            return InPredicate(operand, values, negated)
        if self.accept(TokenType.KEYWORD, "LIKE"):
            pattern = self.expect(TokenType.STRING).value
            return LikePredicate(operand, str(pattern), negated)
        if not negated and self.accept(TokenType.KEYWORD, "IS"):
            is_not = bool(self.accept(TokenType.KEYWORD, "NOT"))
            self.expect(TokenType.KEYWORD, "NULL")
            return IsNullPredicate(operand, is_not)
        raise SQLSyntaxError(
            f"expected a comparison, found {self.current.value!r}",
            position=self.current.position,
        )

    def _parse_operand(self) -> Operand:
        if self.current.type is TokenType.IDENTIFIER:
            return self._parse_column()
        return self._parse_literal()

    def _parse_literal(self) -> Literal:
        sign = 1
        saw_sign = False
        while self.current.type is TokenType.PUNCTUATION and self.current.value in (
            "+",
            "-",
        ):
            saw_sign = True
            if self.advance().value == "-":
                sign = -sign
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return Literal(sign * token.value)
        if token.type is TokenType.STRING and not saw_sign:
            self.advance()
            return Literal(token.value)
        raise SQLSyntaxError(
            f"expected a {'number' if saw_sign else 'literal'}, "
            f"found {token.value!r}",
            position=token.position,
        )
