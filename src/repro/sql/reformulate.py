"""Query reformulation under a schema mapping.

Queries are posed against the mediated (target) schema; to execute one, it
must be rewritten against the source schema under a candidate mapping — the
step the paper's Figure 1 performs once per mapping (turning Q1 into Q11 and
Q12, or Q2 into Q21 and Q22 in the running examples).

Rewriting renames every column reference that the mapping covers, switches
the FROM clause to the source relation, and preserves aliases.  References
to target attributes the mapping does *not* cover are controlled by the
``unmapped`` mode:

* ``"error"`` (default) — raise :class:`~repro.exceptions.ReformulationError`;
* ``"null"`` — replace the reference with a NULL literal.  This matches the
  possible-worlds semantics (an unmapped attribute has no source values, so
  every tuple carries NULL there) and is what the query engine uses, so
  p-mappings produced by the schema matcher — whose lower-ranked candidates
  may leave attributes unmatched — remain queryable;
* ``"keep"`` — leave the reference unchanged (diagnostic use).

The aggregate argument and the GROUP BY attribute must be covered by the
mapping in every mode; aggregating a nonexistent column has no useful
reading in the algorithms downstream.
"""

from __future__ import annotations

from repro.exceptions import ReformulationError
from repro.schema.mapping import PMapping, RelationMapping
from repro.sql.ast import (
    AggregateQuery,
    ColumnRef,
    Condition,
    Literal,
    SubquerySource,
    TableSource,
)

_UNMAPPED_MODES = ("error", "null", "keep")


def _check_mode(unmapped: str) -> None:
    if unmapped not in _UNMAPPED_MODES:
        raise ReformulationError(
            f"unknown unmapped mode {unmapped!r}; "
            f"expected one of {_UNMAPPED_MODES}"
        )


def _rename_mapped(mapping: RelationMapping, ref: ColumnRef) -> ColumnRef:
    new_name = mapping.source_for(ref.name)
    qualifier = ref.qualifier
    if qualifier == mapping.target.name:
        # Qualified by the target relation's own name: requalify with the
        # source relation.  Aliases pass through unchanged.
        qualifier = mapping.source.name
    return ColumnRef(new_name, qualifier)


def _column_renamer(mapping: RelationMapping, unmapped: str):
    """Build the column rewriting function for condition references."""
    target_relation = mapping.target

    def rename(ref: ColumnRef):
        if mapping.maps_target(ref.name):
            return _rename_mapped(mapping, ref)
        if ref.name in target_relation:
            if unmapped == "null":
                return Literal(None)
            if unmapped == "error":
                raise ReformulationError(
                    f"mapping {mapping.describe()} has no correspondence for "
                    f"attribute {ref.name!r} referenced by the query"
                )
        # Not a target attribute at all (e.g. a name introduced by a
        # subquery alias), or "keep" mode; leave it untouched.
        return ref

    return rename


def _strict_rename(
    mapping: RelationMapping, ref: ColumnRef, role: str
) -> ColumnRef:
    if mapping.maps_target(ref.name):
        return _rename_mapped(mapping, ref)
    if ref.name in mapping.target:
        raise ReformulationError(
            f"mapping {mapping.describe()} has no correspondence for the "
            f"{role} attribute {ref.name!r}"
        )
    return ref


def reformulate_condition(
    condition: Condition,
    mapping: RelationMapping,
    *,
    unmapped: str = "error",
) -> Condition:
    """Rewrite a WHERE condition from target attributes to source attributes.

    Used directly by the by-tuple algorithms, which compile one predicate
    per candidate mapping and evaluate every source tuple under each.
    """
    _check_mode(unmapped)
    return condition.map_columns(_column_renamer(mapping, unmapped))


def reformulate_query(
    query: AggregateQuery,
    mapping: RelationMapping,
    *,
    unmapped: str = "error",
) -> AggregateQuery:
    """Rewrite an aggregate query posed on the target schema onto the source.

    Handles one level of FROM-clause nesting (the paper's Q2 shape): the
    inner query's FROM must name the mapping's target relation, and column
    references at *both* levels are renamed (Q2's outer ``AVG(R1.price)``
    becomes ``AVG(R1.currentPrice)`` in the paper's Q21).

    Raises
    ------
    ReformulationError
        When the query's FROM clause does not name the mapping's target
        relation; when the aggregate argument or GROUP BY attribute has no
        correspondence; or (in ``unmapped="error"`` mode) when any
        referenced target attribute has none.
    """
    _check_mode(unmapped)
    source = query.source
    if isinstance(source, SubquerySource):
        inner = reformulate_query(source.query, mapping, unmapped=unmapped)
        new_source: TableSource | SubquerySource = SubquerySource(
            inner, source.alias
        )
        # The outer level's references name the subquery's output, resolved
        # positionally; rename them when they happen to use the target
        # attribute's name (the paper's loose convention), leniently.
        rename = _column_renamer(mapping, "keep")
        return query.map_columns(rename).with_source(new_source)
    if source.name != mapping.target.name:
        raise ReformulationError(
            f"query reads from {source.name!r} but mapping "
            f"{mapping.describe()} targets {mapping.target.name!r}"
        )
    new_source = TableSource(mapping.source.name, source.alias)
    rename = _column_renamer(mapping, unmapped)
    rewritten = query.map_columns(rename).with_source(new_source)
    # map_columns ran the lenient renamer over the aggregate argument and
    # GROUP BY as well; re-derive them strictly so an unmapped argument is
    # an error in every mode.
    if query.aggregate.argument is not None:
        strict_argument = _strict_rename(
            mapping, query.aggregate.argument, "aggregate"
        )
        if rewritten.aggregate.argument != strict_argument:
            raise ReformulationError(
                f"mapping {mapping.describe()} has no correspondence for the "
                f"aggregate attribute {query.aggregate.argument.name!r}"
            )
    if query.group_by is not None:
        strict_group = _strict_rename(mapping, query.group_by, "GROUP BY")
        if rewritten.group_by != strict_group:
            raise ReformulationError(
                f"mapping {mapping.describe()} has no correspondence for the "
                f"GROUP BY attribute {query.group_by.name!r}"
            )
    return rewritten


def reformulations(
    query: AggregateQuery,
    pmapping: PMapping,
    *,
    unmapped: str = "error",
) -> list[tuple[AggregateQuery, float]]:
    """All per-mapping rewritings of ``query`` with their probabilities.

    This is the fan-out step shared by every algorithm: one reformulated
    query per candidate mapping in the p-mapping.
    """
    return [
        (reformulate_query(query, mapping, unmapped=unmapped), probability)
        for mapping, probability in pmapping
    ]
