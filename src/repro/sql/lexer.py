"""Tokenizer for the aggregate-SQL subset.

Produces a flat list of :class:`Token` objects.  Keywords are recognized
case-insensitively and normalized to upper case; identifiers keep their
spelling.  String literals use single quotes with ``''`` as the escape for an
embedded quote, as in standard SQL.
"""

from __future__ import annotations

import enum

from repro.exceptions import SQLSyntaxError

KEYWORDS = frozenset({
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "AS", "AND", "OR", "NOT",
    "DISTINCT", "BETWEEN", "IN", "IS", "NULL", "LIKE",
    "COUNT", "SUM", "AVG", "MIN", "MAX",
})


class TokenType(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"      # = <> != < <= > >=
    PUNCTUATION = "punct"      # ( ) , . *
    END = "end"


class Token:
    """One lexical token with its source position (for error messages)."""

    __slots__ = ("type", "value", "position")

    def __init__(self, type: TokenType, value: object, position: int) -> None:
        self.type = type
        self.value = value
        self.position = position

    def matches(self, type: TokenType, value: object = None) -> bool:
        """True when the token has the given type (and value, if given)."""
        if self.type is not type:
            return False
        return value is None or self.value == value

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, @{self.position})"


_OPERATOR_STARTS = "=<>!"
_PUNCTUATION = "(),.*+-"


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens, ending with a single END token.

    Raises
    ------
    SQLSyntaxError
        On any character that cannot start a token, an unterminated string,
        or a malformed number.
    """
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            value, i = _read_string(text, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            value, i = _read_number(text, i)
            tokens.append(Token(TokenType.NUMBER, value, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, start))
            continue
        if ch in _OPERATOR_STARTS:
            op, i = _read_operator(text, i)
            tokens.append(Token(TokenType.OPERATOR, op, i))
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(TokenType.END, None, n))
    return tokens


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string literal starting at ``start``."""
    i = start + 1
    parts: list[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SQLSyntaxError("unterminated string literal", position=start)


def _read_number(text: str, start: int) -> tuple[float | int, int]:
    """Read an integer or decimal number starting at ``start``."""
    i = start
    n = len(text)
    seen_dot = False
    while i < n and (text[i].isdigit() or text[i] == "."):
        if text[i] == ".":
            if seen_dot:
                raise SQLSyntaxError("malformed number", position=start)
            seen_dot = True
        i += 1
    # Scientific notation: 1e6, 2.5E-3
    if i < n and text[i] in "eE":
        j = i + 1
        if j < n and text[j] in "+-":
            j += 1
        if j < n and text[j].isdigit():
            i = j
            while i < n and text[i].isdigit():
                i += 1
            return float(text[start:i]), i
    raw = text[start:i]
    if raw.endswith("."):
        raise SQLSyntaxError("malformed number", position=start)
    if seen_dot:
        return float(raw), i
    return int(raw), i


def _read_operator(text: str, start: int) -> tuple[str, int]:
    """Read a comparison operator starting at ``start``."""
    two = text[start:start + 2]
    if two in ("<=", ">=", "<>", "!="):
        return ("<>" if two == "!=" else two), start + 2
    one = text[start]
    if one in "=<>":
        return one, start + 1
    raise SQLSyntaxError(f"unexpected operator character {one!r}", position=start)
