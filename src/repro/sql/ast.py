"""Abstract syntax tree for the aggregate-SQL subset.

The tree is immutable; transformations (column renaming during
reformulation) build new nodes via :meth:`Condition.map_columns` /
:meth:`AggregateQuery.map_columns`.  Every node renders itself back to SQL
through ``to_sql()``; the rendering is also valid SQLite SQL, which is how
the by-table path ships reformulated queries to the
:class:`~repro.storage.sqlite_backend.SQLiteBackend` (DATE values appear as
ISO-8601 strings there, matching the backend's storage format).
"""

from __future__ import annotations

import datetime
import enum
import re
from collections.abc import Callable, Iterator, Sequence

from repro.exceptions import SQLSyntaxError, UnsupportedQueryError


class AggregateOp(enum.Enum):
    """The five aggregate operators covered by the paper."""

    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"


_DATE_LITERAL = re.compile(r"^(\d{4})-(\d{1,2})-(\d{1,2})$")


def parse_flexible_date(text: str) -> datetime.date | None:
    """Parse ``YYYY-M-D`` with or without zero padding, else ``None``.

    The paper writes dates like ``'2008-1-20'``; ISO parsing alone would
    reject them, so WHERE-clause comparison against DATE columns accepts
    this looser form.
    """
    match = _DATE_LITERAL.match(text.strip())
    if not match:
        return None
    year, month, day = (int(g) for g in match.groups())
    try:
        return datetime.date(year, month, day)
    except ValueError:
        return None


def _render_value(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, datetime.date):
        return f"'{value.isoformat()}'"
    if isinstance(value, float):
        return repr(value)
    return str(value)


class ColumnRef:
    """A possibly-qualified column reference (``price`` or ``R2.price``)."""

    __slots__ = ("name", "qualifier")

    def __init__(self, name: str, qualifier: str | None = None) -> None:
        self.name = name
        self.qualifier = qualifier

    def with_name(self, name: str) -> "ColumnRef":
        """A copy referencing a different column (qualifier preserved)."""
        return ColumnRef(name, self.qualifier)

    def to_sql(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnRef):
            return NotImplemented
        return self.name == other.name and self.qualifier == other.qualifier

    def __hash__(self) -> int:
        return hash((self.name, self.qualifier))

    def __repr__(self) -> str:
        return f"ColumnRef({self.to_sql()!r})"


class Literal:
    """A constant in a WHERE clause: number, string, or date."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def to_sql(self) -> str:
        return _render_value(self.value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return self.value == other.value and type(self.value) is type(other.value)

    def __hash__(self) -> int:
        return hash((type(self.value), self.value))

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


Operand = ColumnRef | Literal


def _map_operand(operand: Operand, fn: Callable[[ColumnRef], ColumnRef]) -> Operand:
    if isinstance(operand, ColumnRef):
        return fn(operand)
    return operand


class Condition:
    """Base class for WHERE-clause conditions."""

    __slots__ = ()

    def to_sql(self) -> str:
        raise NotImplementedError

    def map_columns(self, fn: Callable[[ColumnRef], ColumnRef]) -> "Condition":
        """A copy of the condition with every column ref passed through ``fn``."""
        raise NotImplementedError

    def columns(self) -> Iterator[ColumnRef]:
        """All column references in the condition (with repetition)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_sql()!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Condition):
            return NotImplemented
        return type(self) is type(other) and self.to_sql() == other.to_sql()

    def __hash__(self) -> int:
        return hash((type(self), self.to_sql()))


COMPARISON_OPERATORS = ("=", "<>", "<", "<=", ">", ">=")


class Comparison(Condition):
    """A binary comparison, e.g. ``date < '2008-1-20'``."""

    __slots__ = ("left", "operator", "right")

    def __init__(self, left: Operand, operator: str, right: Operand) -> None:
        if operator not in COMPARISON_OPERATORS:
            raise SQLSyntaxError(f"unknown comparison operator {operator!r}")
        self.left = left
        self.operator = operator
        self.right = right

    def to_sql(self) -> str:
        return f"{self.left.to_sql()} {self.operator} {self.right.to_sql()}"

    def map_columns(self, fn: Callable[[ColumnRef], ColumnRef]) -> "Comparison":
        return Comparison(
            _map_operand(self.left, fn), self.operator, _map_operand(self.right, fn)
        )

    def columns(self) -> Iterator[ColumnRef]:
        for operand in (self.left, self.right):
            if isinstance(operand, ColumnRef):
                yield operand


class BooleanCondition(Condition):
    """An AND / OR of two or more sub-conditions."""

    __slots__ = ("operator", "operands")

    def __init__(self, operator: str, operands: Sequence[Condition]) -> None:
        if operator not in ("AND", "OR"):
            raise SQLSyntaxError(f"unknown boolean operator {operator!r}")
        if len(operands) < 2:
            raise SQLSyntaxError(f"{operator} needs at least two operands")
        self.operator = operator
        self.operands = tuple(operands)

    def to_sql(self) -> str:
        joined = f" {self.operator} ".join(
            f"({operand.to_sql()})" for operand in self.operands
        )
        return joined

    def map_columns(self, fn: Callable[[ColumnRef], ColumnRef]) -> "BooleanCondition":
        return BooleanCondition(
            self.operator, [operand.map_columns(fn) for operand in self.operands]
        )

    def columns(self) -> Iterator[ColumnRef]:
        for operand in self.operands:
            yield from operand.columns()


class NotCondition(Condition):
    """Negation of a condition."""

    __slots__ = ("operand",)

    def __init__(self, operand: Condition) -> None:
        self.operand = operand

    def to_sql(self) -> str:
        return f"NOT ({self.operand.to_sql()})"

    def map_columns(self, fn: Callable[[ColumnRef], ColumnRef]) -> "NotCondition":
        return NotCondition(self.operand.map_columns(fn))

    def columns(self) -> Iterator[ColumnRef]:
        yield from self.operand.columns()


class BetweenPredicate(Condition):
    """``x BETWEEN low AND high`` (inclusive on both ends)."""

    __slots__ = ("operand", "low", "high", "negated")

    def __init__(
        self, operand: Operand, low: Operand, high: Operand, negated: bool = False
    ) -> None:
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def to_sql(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"{self.operand.to_sql()} {keyword} "
            f"{self.low.to_sql()} AND {self.high.to_sql()}"
        )

    def map_columns(self, fn: Callable[[ColumnRef], ColumnRef]) -> "BetweenPredicate":
        return BetweenPredicate(
            _map_operand(self.operand, fn),
            _map_operand(self.low, fn),
            _map_operand(self.high, fn),
            self.negated,
        )

    def columns(self) -> Iterator[ColumnRef]:
        for operand in (self.operand, self.low, self.high):
            if isinstance(operand, ColumnRef):
                yield operand


class InPredicate(Condition):
    """``x IN (v1, v2, ...)`` over literal values."""

    __slots__ = ("operand", "values", "negated")

    def __init__(
        self, operand: Operand, values: Sequence[Literal], negated: bool = False
    ) -> None:
        if not values:
            raise SQLSyntaxError("IN list must not be empty")
        self.operand = operand
        self.values = tuple(values)
        self.negated = negated

    def to_sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        inner = ", ".join(value.to_sql() for value in self.values)
        return f"{self.operand.to_sql()} {keyword} ({inner})"

    def map_columns(self, fn: Callable[[ColumnRef], ColumnRef]) -> "InPredicate":
        return InPredicate(
            _map_operand(self.operand, fn), self.values, self.negated
        )

    def columns(self) -> Iterator[ColumnRef]:
        if isinstance(self.operand, ColumnRef):
            yield self.operand


class IsNullPredicate(Condition):
    """``x IS [NOT] NULL``."""

    __slots__ = ("operand", "negated")

    def __init__(self, operand: Operand, negated: bool = False) -> None:
        self.operand = operand
        self.negated = negated

    def to_sql(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand.to_sql()} {keyword}"

    def map_columns(self, fn: Callable[[ColumnRef], ColumnRef]) -> "IsNullPredicate":
        return IsNullPredicate(_map_operand(self.operand, fn), self.negated)

    def columns(self) -> Iterator[ColumnRef]:
        if isinstance(self.operand, ColumnRef):
            yield self.operand


class LikePredicate(Condition):
    """``x LIKE pattern`` with SQL ``%`` and ``_`` wildcards."""

    __slots__ = ("operand", "pattern", "negated")

    def __init__(self, operand: Operand, pattern: str, negated: bool = False) -> None:
        self.operand = operand
        self.pattern = pattern
        self.negated = negated

    def to_sql(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"{self.operand.to_sql()} {keyword} {_render_value(self.pattern)}"

    def map_columns(self, fn: Callable[[ColumnRef], ColumnRef]) -> "LikePredicate":
        return LikePredicate(_map_operand(self.operand, fn), self.pattern, self.negated)

    def columns(self) -> Iterator[ColumnRef]:
        if isinstance(self.operand, ColumnRef):
            yield self.operand


class AggregateCall:
    """The SELECT item: ``Agg([DISTINCT] column)`` or ``COUNT(*)``.

    ``argument`` is ``None`` exactly for ``COUNT(*)``.
    """

    __slots__ = ("op", "argument", "distinct")

    def __init__(
        self,
        op: AggregateOp,
        argument: ColumnRef | None,
        distinct: bool = False,
    ) -> None:
        if argument is None and op is not AggregateOp.COUNT:
            raise UnsupportedQueryError(f"{op.value}(*) is not valid SQL")
        if argument is None and distinct:
            raise UnsupportedQueryError("COUNT(DISTINCT *) is not valid SQL")
        self.op = op
        self.argument = argument
        self.distinct = distinct

    def to_sql(self) -> str:
        if self.argument is None:
            return f"{self.op.value}(*)"
        inner = self.argument.to_sql()
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.op.value}({inner})"

    def map_columns(self, fn: Callable[[ColumnRef], ColumnRef]) -> "AggregateCall":
        argument = fn(self.argument) if self.argument is not None else None
        return AggregateCall(self.op, argument, self.distinct)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AggregateCall):
            return NotImplemented
        return (
            self.op == other.op
            and self.argument == other.argument
            and self.distinct == other.distinct
        )

    def __hash__(self) -> int:
        return hash((self.op, self.argument, self.distinct))

    def __repr__(self) -> str:
        return f"AggregateCall({self.to_sql()!r})"


class TableSource:
    """A FROM clause naming a base relation, with an optional alias."""

    __slots__ = ("name", "alias")

    def __init__(self, name: str, alias: str | None = None) -> None:
        self.name = name
        self.alias = alias

    @property
    def binding_name(self) -> str:
        """The name column qualifiers resolve against."""
        return self.alias or self.name

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.name} AS {self.alias}"
        return self.name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSource):
            return NotImplemented
        return self.name == other.name and self.alias == other.alias

    def __hash__(self) -> int:
        return hash((self.name, self.alias))

    def __repr__(self) -> str:
        return f"TableSource({self.to_sql()!r})"


class SubquerySource:
    """A FROM clause wrapping a nested aggregate query (paper's Q2 shape)."""

    __slots__ = ("query", "alias")

    def __init__(self, query: "AggregateQuery", alias: str) -> None:
        if not alias:
            raise SQLSyntaxError("a FROM subquery requires an alias")
        self.query = query
        self.alias = alias

    @property
    def binding_name(self) -> str:
        """The name column qualifiers resolve against."""
        return self.alias

    def to_sql(self) -> str:
        return f"({self.query.to_sql()}) AS {self.alias}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SubquerySource):
            return NotImplemented
        return self.query == other.query and self.alias == other.alias

    def __hash__(self) -> int:
        return hash((self.query, self.alias))

    def __repr__(self) -> str:
        return f"SubquerySource({self.to_sql()!r})"


class AggregateQuery:
    """A full aggregate query over one (possibly nested) source.

    Examples
    --------
    >>> from repro.sql.parser import parse_query
    >>> q = parse_query("SELECT COUNT(*) FROM T1 WHERE date < '2008-1-20'")
    >>> q.aggregate.op
    <AggregateOp.COUNT: 'COUNT'>
    >>> q.to_sql()
    "SELECT COUNT(*) FROM T1 WHERE date < '2008-1-20'"
    """

    __slots__ = ("aggregate", "source", "where", "group_by")

    def __init__(
        self,
        aggregate: AggregateCall,
        source: TableSource | SubquerySource,
        where: Condition | None = None,
        group_by: ColumnRef | None = None,
    ) -> None:
        self.aggregate = aggregate
        self.source = source
        self.where = where
        self.group_by = group_by

    @property
    def is_nested(self) -> bool:
        """True when the FROM clause is a subquery."""
        return isinstance(self.source, SubquerySource)

    def to_sql(self) -> str:
        parts = [f"SELECT {self.aggregate.to_sql()}", f"FROM {self.source.to_sql()}"]
        if self.where is not None:
            parts.append(f"WHERE {self.where.to_sql()}")
        if self.group_by is not None:
            parts.append(f"GROUP BY {self.group_by.to_sql()}")
        return " ".join(parts)

    def map_columns(
        self, fn: Callable[[ColumnRef], ColumnRef]
    ) -> "AggregateQuery":
        """A copy with every column ref of *this level* passed through ``fn``.

        A nested subquery is left untouched: its columns live in a different
        scope (reformulation rewrites each level against its own relation).
        """
        return AggregateQuery(
            self.aggregate.map_columns(fn),
            self.source,
            self.where.map_columns(fn) if self.where is not None else None,
            fn(self.group_by) if self.group_by is not None else None,
        )

    def with_source(
        self, source: TableSource | SubquerySource
    ) -> "AggregateQuery":
        """A copy reading from a different source."""
        return AggregateQuery(self.aggregate, source, self.where, self.group_by)

    def columns(self) -> Iterator[ColumnRef]:
        """All column refs at this level (not inside a nested subquery)."""
        if self.aggregate.argument is not None:
            yield self.aggregate.argument
        if self.where is not None:
            yield from self.where.columns()
        if self.group_by is not None:
            yield self.group_by

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AggregateQuery):
            return NotImplemented
        return self.to_sql() == other.to_sql()

    def __hash__(self) -> int:
        return hash(self.to_sql())

    def __repr__(self) -> str:
        return f"AggregateQuery({self.to_sql()!r})"
