"""Test-only machinery shipped with the library.

:mod:`repro.testing.faults` is the fault-injection harness: named
failpoints compiled into the engine's seams that chaos tests arm to
raise, delay, or corrupt.  Production code paths never import anything
else from this package.
"""
