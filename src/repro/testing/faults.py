"""Named failpoints for chaos testing the execution engine.

The engine's seams call :func:`maybe_fire` with a registered failpoint
name; when a test has armed that name, the harness *injects* a fault —
raise an exception, delay, or hand back a corruption hook — on the Nth
hit.  Unarmed, ``maybe_fire`` is one dict lookup on an empty dict, so
the instrumentation stays in production code at zero practical cost.

Registered failpoints (see :data:`FAILPOINTS`):

==================  =====================================================
name                seam
==================  =====================================================
execute.dispatch    :func:`repro.core.execute.execute_plan`, before lane
                    dispatch
parallel.map        :func:`repro.core.parallel.try_parallel`, before the
                    shard fan-out
parallel.shard      :func:`repro.core.parallel.fold_shard`, inside each
                    worker (arm via env for process pools)
parallel.merge      :func:`repro.core.parallel.try_parallel`, before the
                    accumulator merge (``corrupt`` swaps in a
                    wrong-kind accumulator, which merge detects)
sqlite.cursor       :class:`repro.storage.sqlite_backend.SQLiteBackend`,
                    before every cursor execute (``raise:OperationalError``
                    exercises the retry-with-backoff path)
plan.cache.evict    :class:`repro.core.execute.ExecutionContext`, when an
                    LRU cache evicts an entry
serve.accept        :meth:`repro.serve.service.QueryService`, after a
                    request is parsed off a connection, before routing
serve.handler       the service's query handler, after admission and
                    before plan/execute (``corrupt`` poisons the answer
                    payload, which serialization detects)
serve.drain         :meth:`repro.serve.service.QueryService.drain`, at
                    drain start (a raise is contained: drain completes
                    and reports the fault, it never hangs shutdown)
==================  =====================================================

Arming
------
Programmatic (preferred in tests)::

    with faults.failpoint("parallel.map", "raise:OSError"):
        ...

or via the environment — the only way to reach process-pool workers,
which inherit ``os.environ`` at spawn::

    REPRO_FAILPOINTS="parallel.shard=raise:OSError@2;sqlite.cursor=delay:0.01"

The action grammar is ``kind[:argument][@nth]``:

* ``raise:ExcName`` — raise (``OSError``, ``RuntimeError``, ``MemoryError``,
  ``OperationalError`` (sqlite3), ``EvaluationError``, ``StorageError``,
  ``BrokenExecutor``, ``PicklingError``, ``TimeoutError``, ``ValueError``);
* ``delay:seconds`` — sleep, then continue;
* ``corrupt`` — return :data:`CORRUPT`; the seam applies a site-specific,
  *detectable* corruption (the chaos invariant is "typed error or correct
  answer", so corruption must surface as a typed error, never silently).

``@nth`` fires on the Nth hit only (counting from 1); without it every
hit fires.  Hit counters persist until :func:`reset`.
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import threading
import time
from concurrent.futures import BrokenExecutor
from contextlib import contextmanager

from repro.exceptions import EvaluationError, StorageError
from repro.obs import metrics

#: Every failpoint name the engine's seams call; arming any other name
#: is an error (it would silently never fire).
FAILPOINTS = (
    "execute.dispatch",
    "parallel.map",
    "parallel.shard",
    "parallel.merge",
    "sqlite.cursor",
    "plan.cache.evict",
    "serve.accept",
    "serve.handler",
    "serve.drain",
)

#: Sentinel returned by :func:`maybe_fire` for a ``corrupt`` action.
CORRUPT = object()

ENV_VAR = "REPRO_FAILPOINTS"

_EXCEPTIONS = {
    "OSError": OSError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
    "MemoryError": MemoryError,
    "TimeoutError": TimeoutError,
    "OperationalError": sqlite3.OperationalError,
    "EvaluationError": EvaluationError,
    "StorageError": StorageError,
    "BrokenExecutor": BrokenExecutor,
    "PicklingError": pickle.PicklingError,
}

#: Message used for injected sqlite3.OperationalError — the transient
#: error the backend's retry loop recognizes.
LOCKED_MESSAGE = "database is locked"


class FaultSpec:
    """One armed failpoint: what to do, and on which hit."""

    __slots__ = ("name", "kind", "argument", "nth", "hits", "fired")

    def __init__(
        self, name: str, kind: str, argument: str | None, nth: int | None
    ) -> None:
        if name not in FAILPOINTS:
            raise ValueError(
                f"unknown failpoint {name!r} (registered: {', '.join(FAILPOINTS)})"
            )
        if kind not in ("raise", "delay", "corrupt"):
            raise ValueError(f"unknown fault kind {kind!r}")
        if kind == "raise" and argument not in _EXCEPTIONS:
            raise ValueError(
                f"unknown exception {argument!r} for failpoint {name!r} "
                f"(choices: {', '.join(sorted(_EXCEPTIONS))})"
            )
        if kind == "delay":
            argument = str(float(argument if argument is not None else 0.01))
        self.name = name
        self.kind = kind
        self.argument = argument
        self.nth = nth
        self.hits = 0
        self.fired = 0

    def execute(self):
        """Apply the action; returns :data:`CORRUPT` for corruptions."""
        self.fired += 1
        metrics.inc(f"faults.fired.{self.name}")
        if self.kind == "raise":
            exc_type = _EXCEPTIONS[self.argument]
            if exc_type is sqlite3.OperationalError:
                raise exc_type(LOCKED_MESSAGE)
            raise exc_type(f"injected fault at {self.name}")
        if self.kind == "delay":
            time.sleep(float(self.argument))
            return None
        return CORRUPT


def parse_action(name: str, action: str) -> FaultSpec:
    """Parse a ``kind[:argument][@nth]`` action string into a spec."""
    nth: int | None = None
    if "@" in action:
        action, _, nth_text = action.rpartition("@")
        nth = int(nth_text)
        if nth < 1:
            raise ValueError(f"@nth must be >= 1, got {nth}")
    kind, _, argument = action.partition(":")
    return FaultSpec(name, kind, argument or None, nth)


_lock = threading.Lock()
_active: dict[str, FaultSpec] = {}
_env_loaded = False


def _load_env() -> None:
    """Arm failpoints from :data:`ENV_VAR` (once per process)."""
    global _env_loaded
    _env_loaded = True
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw:
        return
    for entry in raw.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        name, separator, action = entry.partition("=")
        if not separator:
            raise ValueError(
                f"bad {ENV_VAR} entry {entry!r}; expected name=action"
            )
        _active[name.strip()] = parse_action(name.strip(), action.strip())


def maybe_fire(name: str):
    """Fire the named failpoint if armed; the engine's seams call this.

    Returns ``None`` (continue normally) or :data:`CORRUPT` (the seam
    must apply its detectable corruption).  Raises whatever an armed
    ``raise`` action specifies.
    """
    if not _env_loaded:
        with _lock:
            if not _env_loaded:
                _load_env()
    spec = _active.get(name)
    if spec is None:
        return None
    with _lock:
        spec.hits += 1
        due = spec.nth is None or spec.hits == spec.nth
    if not due:
        return None
    return spec.execute()


def arm(name: str, action: str) -> FaultSpec:
    """Arm a failpoint programmatically; returns the live spec."""
    spec = parse_action(name, action)
    with _lock:
        _active[name] = spec
    return spec


def disarm(name: str) -> None:
    """Disarm one failpoint (no-op when not armed)."""
    with _lock:
        _active.pop(name, None)


def reset() -> None:
    """Disarm everything and forget the env var was ever read."""
    global _env_loaded
    with _lock:
        _active.clear()
        _env_loaded = True  # a reset also suppresses re-reading the env


def reload_env() -> None:
    """Disarm everything, then re-arm from the environment (tests)."""
    with _lock:
        _active.clear()
        _load_env()


@contextmanager
def failpoint(name: str, action: str):
    """Arm ``name`` for the ``with`` body; always disarms on exit.

    Yields the :class:`FaultSpec` so tests can assert ``spec.fired``.
    """
    spec = arm(name, action)
    try:
        yield spec
    finally:
        disarm(name)


def active() -> dict[str, str]:
    """The armed failpoints, as ``{name: kind}`` (for diagnostics)."""
    with _lock:
        return {name: spec.kind for name, spec in _active.items()}
