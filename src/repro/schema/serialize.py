"""JSON (de)serialization for relations and probabilistic mappings.

A serialized p-mapping is self-contained: it embeds both relation schemas
(names and attribute types), so a JSON file plus a CSV of the source data
is everything ``repro-bench query`` needs to answer queries.  The format::

    {
      "source": {"name": "S1", "attributes": [
          {"name": "ID", "type": "int"}, ...]},
      "target": {"name": "T1", "attributes": [...]},
      "mappings": [
        {"name": "m11", "probability": 0.6,
         "correspondences": [{"source": "postedDate", "target": "date"}, ...]},
        ...
      ]
    }

Deserialization runs through the normal constructors, so Definition 1/2
validation (one-to-one, distinct mappings, probabilities summing to 1)
applies to loaded files exactly as to programmatic construction.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import MappingError, SchemaError
from repro.schema.correspondence import AttributeCorrespondence
from repro.schema.mapping import PMapping, RelationMapping
from repro.schema.model import Attribute, AttributeType, Relation


def relation_to_dict(relation: Relation) -> dict:
    """A JSON-ready description of a relation schema."""
    return {
        "name": relation.name,
        "attributes": [
            {"name": attribute.name, "type": attribute.type.value}
            for attribute in relation
        ],
    }


def relation_from_dict(data: dict) -> Relation:
    """Rebuild a relation schema from :func:`relation_to_dict` output."""
    try:
        name = data["name"]
        attributes = data["attributes"]
    except (KeyError, TypeError) as exc:
        raise SchemaError(f"malformed relation description: {data!r}") from exc
    built = []
    for entry in attributes:
        try:
            attribute_type = AttributeType(entry["type"])
        except (KeyError, ValueError, TypeError) as exc:
            raise SchemaError(
                f"malformed attribute description: {entry!r}"
            ) from exc
        built.append(Attribute(entry["name"], attribute_type))
    return Relation(name, built)


def pmapping_to_dict(pmapping: PMapping) -> dict:
    """A JSON-ready description of a probabilistic mapping."""
    return {
        "source": relation_to_dict(pmapping.source),
        "target": relation_to_dict(pmapping.target),
        "mappings": [
            {
                "name": mapping.name,
                "probability": probability,
                "correspondences": [
                    {"source": corr.source, "target": corr.target}
                    for corr in mapping.correspondences
                ],
            }
            for mapping, probability in pmapping
        ],
    }


def pmapping_from_dict(data: dict) -> PMapping:
    """Rebuild (and re-validate) a p-mapping from its dictionary form."""
    try:
        source = relation_from_dict(data["source"])
        target = relation_from_dict(data["target"])
        entries = data["mappings"]
    except (KeyError, TypeError) as exc:
        raise MappingError("malformed p-mapping description") from exc
    alternatives = []
    for entry in entries:
        try:
            correspondences = [
                AttributeCorrespondence(corr["source"], corr["target"])
                for corr in entry["correspondences"]
            ]
            probability = entry["probability"]
        except (KeyError, TypeError) as exc:
            raise MappingError(
                f"malformed mapping description: {entry!r}"
            ) from exc
        mapping = RelationMapping(
            source, target, correspondences, name=entry.get("name")
        )
        alternatives.append((mapping, probability))
    return PMapping(source, target, alternatives)


def save_pmapping(pmapping: PMapping, path: str | Path) -> None:
    """Write a p-mapping to ``path`` as indented JSON."""
    Path(path).write_text(json.dumps(pmapping_to_dict(pmapping), indent=2))


def load_pmapping(path: str | Path) -> PMapping:
    """Read a p-mapping written by :func:`save_pmapping` (re-validated)."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise MappingError(f"{path} is not valid JSON: {exc}") from exc
    return pmapping_from_dict(data)
