"""Schema catalog and (probabilistic) schema mappings.

This package models the paper's Definitions 1 and 2:

* :class:`~repro.schema.model.Attribute`, :class:`~repro.schema.model.Relation`,
  :class:`~repro.schema.model.Schema` — a small typed catalog;
* :class:`~repro.schema.correspondence.AttributeCorrespondence` — a pair
  ``(source_attribute, target_attribute)``;
* :class:`~repro.schema.mapping.RelationMapping` — a one-to-one relation
  mapping (Definition 1);
* :class:`~repro.schema.mapping.PMapping` — a probabilistic mapping
  (Definition 2): a set of distinct one-to-one mappings with probabilities
  summing to one;
* :class:`~repro.schema.mapping.SchemaPMapping` — at most one p-mapping per
  relation pair.

The :mod:`repro.schema.matcher` subpackage builds p-mappings automatically
from schema and instance evidence (the upstream tool the paper assumes).
"""

from repro.schema.correspondence import AttributeCorrespondence
from repro.schema.mapping import PMapping, RelationMapping, SchemaPMapping
from repro.schema.model import Attribute, AttributeType, Relation, Schema

__all__ = [
    "Attribute",
    "AttributeType",
    "AttributeCorrespondence",
    "PMapping",
    "Relation",
    "RelationMapping",
    "Schema",
    "SchemaPMapping",
]
