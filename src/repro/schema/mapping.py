"""Schema mappings and probabilistic mappings (paper Definitions 1 and 2).

* :class:`RelationMapping` — a one-to-one relation mapping ``(S, T, m)``:
  a set of attribute correspondences where each source and each target
  attribute occurs at most once (Definition 1).

* :class:`PMapping` — a probabilistic mapping: a set of *distinct*
  one-to-one relation mappings between the same relation pair, each with a
  probability, probabilities summing to 1 (Definition 2).

* :class:`SchemaPMapping` — a set of p-mappings where every relation appears
  in at most one p-mapping (Definition 2, second part).

All three validate their invariants at construction time, so any instance
held by the query engine is known to be well-formed.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence

from repro.exceptions import MappingError
from repro.schema.correspondence import AttributeCorrespondence
from repro.schema.model import Relation

#: Tolerance for the "probabilities sum to 1" check of Definition 2.
_PROBABILITY_TOLERANCE = 1e-9


class RelationMapping:
    """A one-to-one relation mapping between a source and a target relation.

    Parameters
    ----------
    source:
        The source :class:`Relation` (the data actually lives here).
    target:
        The target (mediated) :class:`Relation` (queries are posed here).
    correspondences:
        Attribute correspondences.  Each must reference existing attributes,
        and no source or target attribute may appear twice (one-to-one,
        Definition 1).
    name:
        Optional label (the paper writes m11, m12, ...).

    Examples
    --------
    >>> from repro.schema.model import Attribute, AttributeType, Relation
    >>> s = Relation("S1", [Attribute("postedDate", AttributeType.DATE),
    ...                     Attribute("reducedDate", AttributeType.DATE)])
    >>> t = Relation("T1", [Attribute("date", AttributeType.DATE)])
    >>> m11 = RelationMapping(s, t,
    ...     [AttributeCorrespondence("postedDate", "date")], name="m11")
    >>> m11.source_for("date")
    'postedDate'
    """

    __slots__ = ("source", "target", "correspondences", "name",
                 "_target_to_source", "_source_to_target")

    def __init__(
        self,
        source: Relation,
        target: Relation,
        correspondences: Iterable[AttributeCorrespondence],
        name: str | None = None,
    ) -> None:
        corrs = tuple(sorted(correspondences))
        target_to_source: dict[str, str] = {}
        source_to_target: dict[str, str] = {}
        for corr in corrs:
            if not isinstance(corr, AttributeCorrespondence):
                raise MappingError(
                    f"expected AttributeCorrespondence, got {corr!r}"
                )
            if corr.source not in source:
                raise MappingError(
                    f"correspondence source {corr.source!r} is not an attribute "
                    f"of relation {source.name!r}"
                )
            if corr.target not in target:
                raise MappingError(
                    f"correspondence target {corr.target!r} is not an attribute "
                    f"of relation {target.name!r}"
                )
            if corr.source in source_to_target:
                raise MappingError(
                    f"source attribute {corr.source!r} appears in more than one "
                    "correspondence; relation mappings must be one-to-one"
                )
            if corr.target in target_to_source:
                raise MappingError(
                    f"target attribute {corr.target!r} appears in more than one "
                    "correspondence; relation mappings must be one-to-one"
                )
            source_to_target[corr.source] = corr.target
            target_to_source[corr.target] = corr.source
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "correspondences", corrs)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_target_to_source", target_to_source)
        object.__setattr__(self, "_source_to_target", source_to_target)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("RelationMapping instances are immutable")

    def __reduce__(self):
        # Immutable __slots__ classes need explicit pickle support; the
        # parallel lane ships mappings to worker processes.
        return (
            RelationMapping,
            (self.source, self.target, self.correspondences, self.name),
        )

    def source_for(self, target_attribute: str) -> str:
        """The source attribute mapped to ``target_attribute``.

        Raises :class:`MappingError` when the mapping has no correspondence
        for it — the situation :mod:`repro.sql.reformulate` turns into a
        :class:`~repro.exceptions.ReformulationError`.
        """
        try:
            return self._target_to_source[target_attribute]
        except KeyError:
            raise MappingError(
                f"mapping {self.describe()} has no correspondence for target "
                f"attribute {target_attribute!r}"
            ) from None

    def maps_target(self, target_attribute: str) -> bool:
        """True when some correspondence covers ``target_attribute``."""
        return target_attribute in self._target_to_source

    def target_for(self, source_attribute: str) -> str:
        """The target attribute that ``source_attribute`` maps to."""
        try:
            return self._source_to_target[source_attribute]
        except KeyError:
            raise MappingError(
                f"mapping {self.describe()} has no correspondence for source "
                f"attribute {source_attribute!r}"
            ) from None

    def describe(self) -> str:
        """A short human-readable label for error messages."""
        if self.name:
            return self.name
        pairs = ", ".join(f"{c.source}->{c.target}" for c in self.correspondences)
        return f"({self.source.name} => {self.target.name}: {pairs})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationMapping):
            return NotImplemented
        # Identity of a mapping is its correspondence set over a relation
        # pair; the display name does not participate (Definition 2 requires
        # the *mappings* in a p-mapping to be distinct, not their labels).
        return (
            self.source == other.source
            and self.target == other.target
            and self.correspondences == other.correspondences
        )

    def __hash__(self) -> int:
        return hash((self.source, self.target, self.correspondences))

    def __repr__(self) -> str:
        return f"RelationMapping({self.describe()})"


class PMapping:
    """A probabilistic mapping ``pM = (S, T, m)`` (paper Definition 2).

    ``m`` is a sequence of ``(RelationMapping, probability)`` pairs where the
    mappings are pairwise distinct, each probability lies in [0, 1], and the
    probabilities sum to 1.

    Iteration yields ``(mapping, probability)`` pairs in the order given.

    Examples
    --------
    >>> pm = PMapping(s1_relation, t1_relation,
    ...               [(m11, 0.6), (m12, 0.4)])      # doctest: +SKIP
    """

    __slots__ = ("source", "target", "alternatives")

    def __init__(
        self,
        source: Relation,
        target: Relation,
        alternatives: Iterable[tuple[RelationMapping, float]],
    ) -> None:
        alts = tuple(alternatives)
        if not alts:
            raise MappingError("a p-mapping needs at least one mapping")
        seen: set[RelationMapping] = set()
        total = 0.0
        for mapping, probability in alts:
            if not isinstance(mapping, RelationMapping):
                raise MappingError(f"expected RelationMapping, got {mapping!r}")
            if mapping.source != source or mapping.target != target:
                raise MappingError(
                    f"mapping {mapping.describe()} is not between "
                    f"{source.name!r} and {target.name!r}"
                )
            if mapping in seen:
                raise MappingError(
                    f"duplicate mapping {mapping.describe()} in p-mapping; "
                    "Definition 2 requires distinct mappings"
                )
            seen.add(mapping)
            if not isinstance(probability, (int, float)) or isinstance(probability, bool):
                raise MappingError(f"probability must be a number, got {probability!r}")
            if not 0.0 <= probability <= 1.0:
                raise MappingError(
                    f"probability of {mapping.describe()} is {probability}, "
                    "outside [0, 1]"
                )
            total += probability
        if not math.isclose(total, 1.0, abs_tol=_PROBABILITY_TOLERANCE):
            raise MappingError(
                f"p-mapping probabilities sum to {total}, expected 1"
            )
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "alternatives", alts)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("PMapping instances are immutable")

    def __reduce__(self):
        return (PMapping, (self.source, self.target, self.alternatives))

    @property
    def mappings(self) -> tuple[RelationMapping, ...]:
        """The mappings, without their probabilities."""
        return tuple(m for m, _ in self.alternatives)

    @property
    def probabilities(self) -> tuple[float, ...]:
        """The probabilities, aligned with :attr:`mappings`."""
        return tuple(p for _, p in self.alternatives)

    def probability_of(self, mapping: RelationMapping) -> float:
        """The probability assigned to ``mapping`` (0 when absent)."""
        for candidate, probability in self.alternatives:
            if candidate == mapping:
                return probability
        return 0.0

    def most_probable(self) -> RelationMapping:
        """The mapping with the highest probability (ties: first listed)."""
        return max(self.alternatives, key=lambda mp: mp[1])[0]

    def __iter__(self) -> Iterator[tuple[RelationMapping, float]]:
        return iter(self.alternatives)

    def __len__(self) -> int:
        return len(self.alternatives)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PMapping):
            return NotImplemented
        return (
            self.source == other.source
            and self.target == other.target
            and self.alternatives == other.alternatives
        )

    def __hash__(self) -> int:
        return hash((self.source, self.target, self.alternatives))

    def __repr__(self) -> str:
        alts = ", ".join(
            f"{m.describe()}: {p:.4g}" for m, p in self.alternatives
        )
        return f"PMapping({self.source.name} => {self.target.name}; {alts})"


class SchemaPMapping:
    """A schema p-mapping: at most one p-mapping per relation (Definition 2).

    Provides lookup of the p-mapping responsible for a given *target*
    relation, which is what the query engine needs when reformulating a
    query posed on the mediated schema.
    """

    __slots__ = ("pmappings", "_by_target", "_by_source")

    def __init__(self, pmappings: Sequence[PMapping]) -> None:
        pms = tuple(pmappings)
        if not pms:
            raise MappingError("a schema p-mapping needs at least one p-mapping")
        by_target: dict[str, PMapping] = {}
        by_source: dict[str, PMapping] = {}
        for pm in pms:
            if not isinstance(pm, PMapping):
                raise MappingError(f"expected PMapping, got {pm!r}")
            if pm.target.name in by_target:
                raise MappingError(
                    f"relation {pm.target.name!r} appears in more than one "
                    "p-mapping"
                )
            if pm.source.name in by_source:
                raise MappingError(
                    f"relation {pm.source.name!r} appears in more than one "
                    "p-mapping"
                )
            by_target[pm.target.name] = pm
            by_source[pm.source.name] = pm
        object.__setattr__(self, "pmappings", pms)
        object.__setattr__(self, "_by_target", by_target)
        object.__setattr__(self, "_by_source", by_source)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("SchemaPMapping instances are immutable")

    def __reduce__(self):
        return (SchemaPMapping, (self.pmappings,))

    def for_target(self, relation_name: str) -> PMapping:
        """The p-mapping whose target relation is ``relation_name``."""
        try:
            return self._by_target[relation_name]
        except KeyError:
            raise MappingError(
                f"no p-mapping targets relation {relation_name!r}"
            ) from None

    def for_source(self, relation_name: str) -> PMapping:
        """The p-mapping whose source relation is ``relation_name``."""
        try:
            return self._by_source[relation_name]
        except KeyError:
            raise MappingError(
                f"no p-mapping has source relation {relation_name!r}"
            ) from None

    def __iter__(self) -> Iterator[PMapping]:
        return iter(self.pmappings)

    def __len__(self) -> int:
        return len(self.pmappings)

    def __repr__(self) -> str:
        return f"SchemaPMapping({len(self.pmappings)} p-mappings)"
