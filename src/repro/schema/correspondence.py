"""Attribute correspondences: the atoms of a schema mapping.

A correspondence ``c = (s_i, t_j)`` states that source attribute ``s_i``
supplies the values of target attribute ``t_j`` (paper Section II).  The
direction matters: queries are written against the target (mediated) schema
and reformulated onto the source, so lookup by *target* attribute is the hot
path.
"""

from __future__ import annotations

from repro.exceptions import MappingError


class AttributeCorrespondence:
    """A one-to-one pairing of a source attribute name with a target one.

    Examples
    --------
    >>> c = AttributeCorrespondence("postedDate", "date")
    >>> c.source, c.target
    ('postedDate', 'date')
    """

    __slots__ = ("source", "target")

    def __init__(self, source: str, target: str) -> None:
        if not source or not isinstance(source, str):
            raise MappingError(
                f"correspondence source must be a non-empty string, got {source!r}"
            )
        if not target or not isinstance(target, str):
            raise MappingError(
                f"correspondence target must be a non-empty string, got {target!r}"
            )
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "target", target)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("AttributeCorrespondence instances are immutable")

    def __reduce__(self):
        # Immutable __slots__ classes need explicit pickle support; the
        # parallel lane ships mappings to worker processes.
        return (AttributeCorrespondence, (self.source, self.target))

    def reversed(self) -> "AttributeCorrespondence":
        """The correspondence with source and target swapped."""
        return AttributeCorrespondence(self.target, self.source)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributeCorrespondence):
            return NotImplemented
        return self.source == other.source and self.target == other.target

    def __lt__(self, other: "AttributeCorrespondence") -> bool:
        return (self.source, self.target) < (other.source, other.target)

    def __hash__(self) -> int:
        return hash((self.source, self.target))

    def __repr__(self) -> str:
        return f"AttributeCorrespondence({self.source!r} -> {self.target!r})"
