"""Murty's ranking algorithm: the K best one-to-one assignments.

Top-K schema matching (Gal, JoDS 2006; Roitman et al., ER 2008 — the tools
the paper cites as p-mapping producers) needs not just the best attribute
assignment but the K best.  Murty's algorithm delivers them in
nondecreasing cost order by systematically partitioning the solution
space: after emitting the best assignment of a subproblem, it spawns one
child subproblem per assigned pair — the pair is *forbidden* in that child
while all earlier pairs are *forced* — so the children partition "all
assignments except the one just emitted".

Each child costs one Hungarian solve, so the total is O(K * n * solve):
polynomial in K and the matrix size.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Iterator, Sequence

from repro.schema.matcher.hungarian import (
    FORBIDDEN,
    InfeasibleAssignmentError,
    solve_assignment,
)


def _solve_constrained(
    cost: Sequence[Sequence[float]],
    forced: dict[int, int],
    forbidden: set[tuple[int, int]],
) -> tuple[list[int], float] | None:
    """Best assignment honouring forced pairs and forbidden pairs.

    Returns ``None`` when infeasible.  Forced rows/columns are removed and
    their costs added back; forbidden entries get :data:`FORBIDDEN`.
    """
    n = len(cost)
    m = len(cost[0]) if n else 0
    free_rows = [i for i in range(n) if i not in forced]
    used_columns = set(forced.values())
    free_columns = [j for j in range(m) if j not in used_columns]
    if len(free_rows) > len(free_columns):
        return None
    base = 0.0
    for row, column in forced.items():
        entry = cost[row][column]
        if entry >= FORBIDDEN / 2:
            return None
        base += entry
    reduced = [
        [
            FORBIDDEN if (row, column) in forbidden else cost[row][column]
            for column in free_columns
        ]
        for row in free_rows
    ]
    try:
        sub_assignment, sub_cost = solve_assignment(reduced)
    except InfeasibleAssignmentError:
        return None
    assignment = [-1] * n
    for row, column in forced.items():
        assignment[row] = column
    for local_row, local_column in enumerate(sub_assignment):
        assignment[free_rows[local_row]] = free_columns[local_column]
    return assignment, base + sub_cost


def top_k_assignments(
    cost: Sequence[Sequence[float]], k: int
) -> Iterator[tuple[list[int], float]]:
    """Yield up to ``k`` distinct assignments in nondecreasing cost order.

    Examples
    --------
    >>> list(top_k_assignments([[0, 1], [1, 0]], 2))
    [([0, 1], 0.0), ([1, 0], 2.0)]
    """
    if k <= 0 or not cost:
        return
    first = _solve_constrained(cost, {}, set())
    if first is None:
        return
    counter = itertools.count()
    # Heap entries: (cost, tiebreak, assignment, forced, forbidden)
    heap: list[tuple[float, int, list[int], dict[int, int], set[tuple[int, int]]]] = [
        (first[1], next(counter), first[0], {}, set())
    ]
    emitted = 0
    while heap and emitted < k:
        total, _, assignment, forced, forbidden = heapq.heappop(heap)
        yield assignment, total
        emitted += 1
        # Partition the remaining solutions of this subproblem.
        child_forced = dict(forced)
        for row in range(len(cost)):
            if row in forced:
                continue
            pair = (row, assignment[row])
            child_forbidden = set(forbidden)
            child_forbidden.add(pair)
            solved = _solve_constrained(cost, child_forced, child_forbidden)
            if solved is not None:
                heapq.heappush(
                    heap,
                    (solved[1], next(counter), solved[0], dict(child_forced),
                     child_forbidden),
                )
            child_forced[row] = assignment[row]
