"""Hungarian algorithm: minimum-cost one-to-one assignment in O(n^2 * m).

This is the classic potentials ("Kuhn-Munkres with dual variables")
formulation for rectangular matrices with ``rows <= cols``: every row is
assigned to a distinct column minimizing total cost.  Written from scratch
(the library does not lean on :mod:`scipy` at runtime); the test suite
cross-checks it against ``scipy.optimize.linear_sum_assignment`` and brute
force.

Forbidden pairs are modelled with :data:`FORBIDDEN` (a large finite cost —
infinities would poison the dual updates); :func:`solve_assignment` reports
infeasibility when any chosen entry is forbidden.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import ReproError

#: Cost used for disallowed pairs.  Large enough to never be chosen when a
#: feasible alternative exists, small enough that sums stay well below
#: float overflow.
FORBIDDEN = 1e15


class InfeasibleAssignmentError(ReproError):
    """No assignment avoids the forbidden pairs."""


def solve_assignment(
    cost: Sequence[Sequence[float]],
) -> tuple[list[int], float]:
    """Minimum-cost assignment of every row to a distinct column.

    Parameters
    ----------
    cost:
        A rectangular matrix with ``len(cost) <= len(cost[0])`` (fewer or
        equally many rows as columns).

    Returns
    -------
    (assignment, total):
        ``assignment[i]`` is the column assigned to row ``i``; ``total`` is
        the summed cost.

    Raises
    ------
    InfeasibleAssignmentError
        When every assignment uses a :data:`FORBIDDEN` entry.

    Examples
    --------
    >>> solve_assignment([[4, 1, 3], [2, 0, 5], [3, 2, 2]])
    ([1, 0, 2], 5.0)
    """
    n = len(cost)
    if n == 0:
        return [], 0.0
    m = len(cost[0])
    if any(len(row) != m for row in cost):
        raise ReproError("cost matrix rows have unequal lengths")
    if n > m:
        raise ReproError(
            f"assignment needs at least as many columns as rows ({n} > {m})"
        )
    INF = float("inf")
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    p = [0] * (m + 1)  # p[j]: row (1-based) matched to column j; 0 = free
    way = [0] * (m + 1)
    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [INF] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = INF
            j1 = 0
            row_cost = cost[i0 - 1]
            for j in range(1, m + 1):
                if used[j]:
                    continue
                current = row_cost[j - 1] - u[i0] - v[j]
                if current < minv[j]:
                    minv[j] = current
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(m + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
    assignment = [-1] * n
    for j in range(1, m + 1):
        if p[j]:
            assignment[p[j] - 1] = j - 1
    total = 0.0
    for i, j in enumerate(assignment):
        entry = cost[i][j]
        if entry >= FORBIDDEN / 2:
            raise InfeasibleAssignmentError(
                "no assignment avoids the forbidden pairs"
            )
        total += entry
    return assignment, total
