"""End-to-end schema matcher producing probabilistic mappings.

:class:`SchemaMatcher` turns a source instance and a target (mediated)
relation into a :class:`~repro.schema.mapping.PMapping`:

1. score every (source attribute, target attribute) pair with
   :func:`~repro.schema.matcher.similarity.attribute_similarity` (name +
   instance evidence);
2. find the K best one-to-one assignments with Murty's algorithm over the
   similarity matrix (maximization, via cost = 1 - similarity); target
   attributes may also stay *unmatched* when no pair clears the similarity
   threshold (modelled with padding columns);
3. convert assignment scores into mapping probabilities with a softmax at
   a configurable temperature, and package everything as a validated
   p-mapping (distinct mappings, probabilities summing to 1).

Known correspondences can be pinned, exactly like the paper's examples
where only one target attribute is uncertain.
"""

from __future__ import annotations

import math

from repro.exceptions import MappingError
from repro.schema.correspondence import AttributeCorrespondence
from repro.schema.mapping import PMapping, RelationMapping
from repro.schema.matcher.murty import top_k_assignments
from repro.schema.matcher.similarity import attribute_similarity
from repro.schema.model import Relation
from repro.storage.table import Table


class MatcherConfig:
    """Tunables for :class:`SchemaMatcher`.

    Parameters
    ----------
    top_k:
        Number of candidate mappings to produce (at most; duplicates after
        dropping below-threshold pairs are merged).
    threshold:
        Pairs scoring below this similarity are treated as "no match" —
        the corresponding target attribute stays unmapped in that
        candidate.
    temperature:
        Softmax temperature for score -> probability conversion.  Lower is
        sharper (more mass on the best mapping).
    sample_size:
        How many instance rows to sample for instance evidence.
    name_weight:
        Weight of name evidence versus instance evidence.
    """

    def __init__(
        self,
        top_k: int = 5,
        threshold: float = 0.35,
        temperature: float = 0.1,
        sample_size: int = 100,
        name_weight: float = 0.6,
    ) -> None:
        if top_k < 1:
            raise MappingError("top_k must be at least 1")
        if not 0.0 < temperature:
            raise MappingError("temperature must be positive")
        self.top_k = top_k
        self.threshold = threshold
        self.temperature = temperature
        self.sample_size = sample_size
        self.name_weight = name_weight


class SchemaMatcher:
    """Matches a source relation to a target relation, yielding a p-mapping.

    Parameters
    ----------
    source:
        The source :class:`~repro.storage.table.Table` (instance evidence
        comes from its rows) or a bare :class:`Relation` (names only).
    target:
        The target relation, optionally with its own instance
        (``target_instance``) for instance evidence.
    known:
        Correspondences to pin in every candidate mapping.
    config:
        A :class:`MatcherConfig`; defaults are sensible for small schemas.
    """

    def __init__(
        self,
        source: Table | Relation,
        target: Table | Relation,
        *,
        known: list[AttributeCorrespondence] | None = None,
        config: MatcherConfig | None = None,
    ) -> None:
        if isinstance(source, Table):
            self.source_relation = source.relation
            self._source_table: Table | None = source
        else:
            self.source_relation = source
            self._source_table = None
        if isinstance(target, Table):
            self.target_relation = target.relation
            self._target_table: Table | None = target
        else:
            self.target_relation = target
            self._target_table = None
        self.known = list(known or [])
        self.config = config or MatcherConfig()
        for corr in self.known:
            if corr.source not in self.source_relation:
                raise MappingError(
                    f"known correspondence source {corr.source!r} not in "
                    f"{self.source_relation.name!r}"
                )
            if corr.target not in self.target_relation:
                raise MappingError(
                    f"known correspondence target {corr.target!r} not in "
                    f"{self.target_relation.name!r}"
                )

    # -- scoring -----------------------------------------------------------

    def _sample(self, table: Table | None, attribute: str) -> tuple:
        if table is None:
            return ()
        return table.column(attribute)[: self.config.sample_size]

    def similarity_matrix(self) -> tuple[list[str], list[str], list[list[float]]]:
        """Scores for every *free* (target, source) attribute pair.

        Known correspondences (and the attributes they bind) are excluded.
        Rows index free target attributes, columns free source attributes.
        """
        pinned_sources = {c.source for c in self.known}
        pinned_targets = {c.target for c in self.known}
        free_targets = [
            a.name for a in self.target_relation if a.name not in pinned_targets
        ]
        free_sources = [
            a.name for a in self.source_relation if a.name not in pinned_sources
        ]
        matrix = [
            [
                attribute_similarity(
                    source_name,
                    target_name,
                    self._sample(self._source_table, source_name),
                    self._sample(self._target_table, target_name),
                    name_weight=self.config.name_weight,
                )
                for source_name in free_sources
            ]
            for target_name in free_targets
        ]
        return free_targets, free_sources, matrix

    # -- matching ----------------------------------------------------------

    def candidate_mappings(self) -> list[tuple[RelationMapping, float]]:
        """The top-K one-to-one mappings with their total similarity scores.

        Each target attribute is assigned a distinct source attribute or
        stays unmatched (when "unmatched" scores better than any remaining
        pair, i.e. all candidates fall below the threshold).
        """
        free_targets, free_sources, matrix = self.similarity_matrix()
        if not free_targets:
            return [(self._build_mapping({}, 0), 1.0)]
        # Cost matrix: one row per free target attribute; columns are the
        # free source attributes followed by one "stay unmatched" padding
        # column per target, priced at the threshold.
        columns = len(free_sources) + len(free_targets)
        cost: list[list[float]] = []
        for t_index in range(len(free_targets)):
            row = [1.0 - matrix[t_index][s_index] for s_index in range(len(free_sources))]
            for pad in range(len(free_targets)):
                row.append(
                    1.0 - self.config.threshold if pad == t_index else 2.0
                )
            cost.append(row)
        candidates: list[tuple[RelationMapping, float]] = []
        seen: set[RelationMapping] = set()
        for assignment, total_cost in top_k_assignments(cost, self.config.top_k * 3):
            pairs: dict[str, str] = {}
            score = 0.0
            for t_index, column in enumerate(assignment):
                if column >= len(free_sources):
                    continue  # this target attribute stays unmatched
                pairs[free_targets[t_index]] = free_sources[column]
                score += matrix[t_index][column]
            mapping = self._build_mapping(pairs, len(candidates))
            if mapping in seen:
                continue
            seen.add(mapping)
            candidates.append((mapping, score))
            if len(candidates) >= self.config.top_k:
                break
        return candidates

    def _build_mapping(
        self, target_to_source: dict[str, str], index: int
    ) -> RelationMapping:
        correspondences = list(self.known) + [
            AttributeCorrespondence(source_name, target_name)
            for target_name, source_name in target_to_source.items()
        ]
        return RelationMapping(
            self.source_relation,
            self.target_relation,
            correspondences,
            name=f"match{index + 1}",
        )

    def pmapping(self) -> PMapping:
        """The final probabilistic mapping: candidates + softmax probabilities.

        Examples
        --------
        >>> SchemaMatcher(source_table, T1_RELATION).pmapping()  # doctest: +SKIP
        PMapping(S1 => T1; match1: 0.7313, match2: 0.2687)
        """
        candidates = self.candidate_mappings()
        temperature = self.config.temperature
        best = max(score for _, score in candidates)
        weights = [
            math.exp((score - best) / temperature) for _, score in candidates
        ]
        total = sum(weights)
        probabilities = [w / total for w in weights]
        drift = 1.0 - sum(probabilities)
        probabilities[probabilities.index(max(probabilities))] += drift
        return PMapping(
            self.source_relation,
            self.target_relation,
            [
                (mapping, probability)
                for (mapping, _), probability in zip(candidates, probabilities)
            ],
        )
