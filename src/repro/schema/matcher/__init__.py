"""Automatic schema matching: the upstream producer of p-mappings.

The paper "assume[s] a set of probabilistic schema matchings is given
through an existing algorithm" (Section VI, citing top-K matchers).  This
subpackage is that existing algorithm, built from scratch:

* :mod:`~repro.schema.matcher.similarity` — attribute similarity from name
  evidence (edit distance, trigrams, token overlap) and instance evidence
  (value-distribution features);
* :mod:`~repro.schema.matcher.hungarian` — an O(n^3) Hungarian solver for
  the best one-to-one attribute assignment;
* :mod:`~repro.schema.matcher.murty` — Murty's ranking algorithm for the
  top-K assignments;
* :mod:`~repro.schema.matcher.matcher` — :class:`SchemaMatcher`, which
  turns the top-K scored assignments into a validated
  :class:`~repro.schema.mapping.PMapping`.
"""

from repro.schema.matcher.hungarian import solve_assignment
from repro.schema.matcher.matcher import MatcherConfig, SchemaMatcher
from repro.schema.matcher.murty import top_k_assignments
from repro.schema.matcher.similarity import (
    attribute_similarity,
    instance_similarity,
    name_similarity,
)

__all__ = [
    "MatcherConfig",
    "SchemaMatcher",
    "attribute_similarity",
    "instance_similarity",
    "name_similarity",
    "solve_assignment",
    "top_k_assignments",
]
