"""Attribute similarity measures for schema matching.

Two evidence sources are combined:

* **name evidence** — attribute names compared by normalized Levenshtein
  distance, character-trigram Jaccard similarity, and token overlap after
  splitting camelCase/snake_case (so ``postedDate`` and ``date`` share the
  token ``date``);
* **instance evidence** — value samples compared by type compatibility and,
  for numeric columns, by the overlap of their value distributions
  (location/scale features); for text columns by length and character-class
  profiles.

All scores live in [0, 1].  The weights are deliberately simple — this is
the substrate the paper assumes, not its contribution — but the measures
are real and tested.
"""

from __future__ import annotations

import math
import re
import statistics
from collections.abc import Sequence

_TOKEN_SPLIT = re.compile(r"[_\-\s]+|(?<=[a-z0-9])(?=[A-Z])")


def tokenize_name(name: str) -> list[str]:
    """Split an attribute name into lowercase tokens.

    Examples
    --------
    >>> tokenize_name("postedDate")
    ['posted', 'date']
    >>> tokenize_name("current_price")
    ['current', 'price']
    """
    return [token.lower() for token in _TOKEN_SPLIT.split(name) if token]


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance (insert/delete/substitute, all cost 1)."""
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def _trigrams(text: str) -> set[str]:
    padded = f"  {text.lower()} "
    return {padded[i:i + 3] for i in range(len(padded) - 2)}


def trigram_similarity(a: str, b: str) -> float:
    """Jaccard similarity of the character trigram sets of two names."""
    ta, tb = _trigrams(a), _trigrams(b)
    if not ta and not tb:
        return 1.0
    union = ta | tb
    return len(ta & tb) / len(union)


def token_overlap(a: str, b: str) -> float:
    """Jaccard overlap of the name token sets (camelCase/snake aware)."""
    sa, sb = set(tokenize_name(a)), set(tokenize_name(b))
    if not sa and not sb:
        return 1.0
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / len(sa | sb)


def name_similarity(a: str, b: str) -> float:
    """Combined name similarity in [0, 1].

    Examples
    --------
    >>> name_similarity("price", "listPrice") > name_similarity("price", "phone")
    True
    """
    if not a or not b:
        return 0.0
    edit = 1.0 - levenshtein(a.lower(), b.lower()) / max(len(a), len(b))
    return 0.4 * edit + 0.3 * trigram_similarity(a, b) + 0.3 * token_overlap(a, b)


# -- instance evidence --------------------------------------------------------


def _numeric_profile(values: list[float]) -> tuple[float, float, float, float]:
    mean = statistics.fmean(values)
    std = statistics.pstdev(values) if len(values) > 1 else 0.0
    return (mean, std, min(values), max(values))


def _overlap_ratio(lo1: float, hi1: float, lo2: float, hi2: float) -> float:
    """Length of range intersection over length of range union."""
    intersection = min(hi1, hi2) - max(lo1, lo2)
    union = max(hi1, hi2) - min(lo1, lo2)
    if union <= 0:
        return 1.0  # both ranges degenerate at the same point
    return max(0.0, intersection) / union


def _closeness(a: float, b: float) -> float:
    """1 when equal, decaying with relative difference."""
    scale = max(abs(a), abs(b), 1e-12)
    return math.exp(-abs(a - b) / scale)


def instance_similarity(
    values_a: Sequence[object], values_b: Sequence[object]
) -> float:
    """Similarity of two value samples in [0, 1].

    Numeric samples compare distribution features; text samples compare
    length and digit-ratio profiles; mixed-type samples score low (0.1,
    not 0 — type inference on dirty data is fallible).
    """
    sample_a = [v for v in values_a if v is not None]
    sample_b = [v for v in values_b if v is not None]
    if not sample_a or not sample_b:
        return 0.5  # no evidence either way
    numeric_a = all(isinstance(v, (int, float)) for v in sample_a)
    numeric_b = all(isinstance(v, (int, float)) for v in sample_b)
    if numeric_a and numeric_b:
        mean_a, std_a, min_a, max_a = _numeric_profile([float(v) for v in sample_a])
        mean_b, std_b, min_b, max_b = _numeric_profile([float(v) for v in sample_b])
        return (
            0.4 * _overlap_ratio(min_a, max_a, min_b, max_b)
            + 0.3 * _closeness(mean_a, mean_b)
            + 0.3 * _closeness(std_a, std_b)
        )
    if numeric_a != numeric_b:
        return 0.1
    texts_a = [str(v) for v in sample_a]
    texts_b = [str(v) for v in sample_b]
    length_a = statistics.fmean(len(t) for t in texts_a)
    length_b = statistics.fmean(len(t) for t in texts_b)
    digits_a = statistics.fmean(
        sum(c.isdigit() for c in t) / max(1, len(t)) for t in texts_a
    )
    digits_b = statistics.fmean(
        sum(c.isdigit() for c in t) / max(1, len(t)) for t in texts_b
    )
    return 0.5 * _closeness(length_a, length_b) + 0.5 * (
        1.0 - abs(digits_a - digits_b)
    )


def attribute_similarity(
    name_a: str,
    name_b: str,
    values_a: Sequence[object] = (),
    values_b: Sequence[object] = (),
    *,
    name_weight: float = 0.6,
) -> float:
    """Combined attribute similarity: names plus (optional) instances.

    Without instance samples the score is the name similarity alone.
    """
    names = name_similarity(name_a, name_b)
    if not values_a or not values_b:
        return names
    instances = instance_similarity(values_a, values_b)
    return name_weight * names + (1.0 - name_weight) * instances
