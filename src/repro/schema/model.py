"""Typed relational catalog: attributes, relations, schemas.

The catalog is deliberately small — just enough structure for the paper's
setting: relations are flat, attributes are typed (int/real/text/date), and a
schema is a named collection of relations.  Everything is immutable so that
mappings and queries can safely hold references.
"""

from __future__ import annotations

import datetime
import enum
from collections.abc import Iterable, Iterator

from repro.exceptions import SchemaError


class AttributeType(enum.Enum):
    """The value domain of an attribute.

    ``DATE`` values are represented as :class:`datetime.date`; comparisons in
    WHERE clauses work on them natively (the paper's Q1 compares dates).
    """

    INT = "int"
    REAL = "real"
    TEXT = "text"
    DATE = "date"

    def python_type(self) -> type:
        """The Python type used to store values of this attribute type."""
        return {
            AttributeType.INT: int,
            AttributeType.REAL: float,
            AttributeType.TEXT: str,
            AttributeType.DATE: datetime.date,
        }[self]

    def coerce(self, value: object) -> object:
        """Convert ``value`` into this type's Python representation.

        Accepts the obvious widenings (int -> float for REAL, ISO strings
        for DATE) and raises :class:`SchemaError` otherwise.
        """
        if value is None:
            return None
        if self is AttributeType.INT:
            if isinstance(value, bool):
                raise SchemaError(f"cannot store boolean {value!r} in INT column")
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            if isinstance(value, str):
                try:
                    return int(value)
                except ValueError as exc:
                    raise SchemaError(f"cannot coerce {value!r} to INT") from exc
        elif self is AttributeType.REAL:
            if isinstance(value, bool):
                raise SchemaError(f"cannot store boolean {value!r} in REAL column")
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                try:
                    return float(value)
                except ValueError as exc:
                    raise SchemaError(f"cannot coerce {value!r} to REAL") from exc
        elif self is AttributeType.TEXT:
            if isinstance(value, str):
                return value
            return str(value)
        elif self is AttributeType.DATE:
            if isinstance(value, datetime.datetime):
                return value.date()
            if isinstance(value, datetime.date):
                return value
            if isinstance(value, str):
                try:
                    return datetime.date.fromisoformat(value)
                except ValueError as exc:
                    raise SchemaError(
                        f"cannot coerce {value!r} to DATE (expected ISO format)"
                    ) from exc
        raise SchemaError(f"cannot coerce {value!r} to {self.value.upper()}")


class Attribute:
    """A named, typed column of a relation.

    Examples
    --------
    >>> Attribute("price", AttributeType.REAL)
    Attribute('price', REAL)
    """

    __slots__ = ("name", "type")

    def __init__(self, name: str, type: AttributeType = AttributeType.REAL) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {name!r}")
        if not isinstance(type, AttributeType):
            raise SchemaError(f"attribute type must be an AttributeType, got {type!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "type", type)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Attribute instances are immutable")

    def __reduce__(self):
        # __slots__ plus the immutability guard breaks default pickling
        # (unpickling would call __setattr__); reconstruct through the
        # validating constructor instead.  The parallel execution lane
        # ships schema objects to worker processes, so this matters.
        return (Attribute, (self.name, self.type))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return self.name == other.name and self.type == other.type

    def __hash__(self) -> int:
        return hash((self.name, self.type))

    def __repr__(self) -> str:
        return f"Attribute({self.name!r}, {self.type.name})"


class Relation:
    """A named relation (table) schema: an ordered list of attributes.

    Attribute names are unique within a relation; lookup by name is O(1).

    Examples
    --------
    >>> r = Relation("S1", [Attribute("ID", AttributeType.INT),
    ...                     Attribute("price", AttributeType.REAL)])
    >>> r.attribute("price").type
    <AttributeType.REAL: 'real'>
    >>> "ID" in r
    True
    """

    __slots__ = ("name", "attributes", "_by_name")

    def __init__(self, name: str, attributes: Iterable[Attribute]) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError(f"relation name must be a non-empty string, got {name!r}")
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        by_name: dict[str, Attribute] = {}
        for attr in attrs:
            if not isinstance(attr, Attribute):
                raise SchemaError(f"expected Attribute, got {attr!r}")
            if attr.name in by_name:
                raise SchemaError(
                    f"duplicate attribute {attr.name!r} in relation {name!r}"
                )
            by_name[attr.name] = attr
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(self, "_by_name", by_name)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Relation instances are immutable")

    def __reduce__(self):
        return (Relation, (self.name, self.attributes))

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Names of all attributes, in declaration order."""
        return tuple(attr.name for attr in self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name, raising :class:`SchemaError` if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {name!r} "
                f"(has: {', '.join(self.attribute_names)})"
            ) from None

    def index_of(self, name: str) -> int:
        """Positional index of the named attribute."""
        for i, attr in enumerate(self.attributes):
            if attr.name == name:
                return i
        raise SchemaError(f"relation {self.name!r} has no attribute {name!r}")

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:
        cols = ", ".join(f"{a.name}:{a.type.value}" for a in self.attributes)
        return f"Relation({self.name!r}, [{cols}])"


class Schema:
    """A named collection of relations (a source schema or mediated schema)."""

    __slots__ = ("name", "relations", "_by_name")

    def __init__(self, name: str, relations: Iterable[Relation]) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError(f"schema name must be a non-empty string, got {name!r}")
        rels = tuple(relations)
        by_name: dict[str, Relation] = {}
        for rel in rels:
            if not isinstance(rel, Relation):
                raise SchemaError(f"expected Relation, got {rel!r}")
            if rel.name in by_name:
                raise SchemaError(f"duplicate relation {rel.name!r} in schema {name!r}")
            by_name[rel.name] = rel
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "relations", rels)
        object.__setattr__(self, "_by_name", by_name)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Schema instances are immutable")

    def __reduce__(self):
        return (Schema, (self.name, self.relations))

    def relation(self, name: str) -> Relation:
        """Look up a relation by name, raising :class:`SchemaError` if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no relation {name!r} "
                f"(has: {', '.join(r.name for r in self.relations)})"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations)

    def __len__(self) -> int:
        return len(self.relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.name == other.name and self.relations == other.relations

    def __hash__(self) -> int:
        return hash((self.name, self.relations))

    def __repr__(self) -> str:
        return f"Schema({self.name!r}, {len(self.relations)} relations)"
