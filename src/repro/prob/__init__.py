"""Finite discrete probability distributions.

The distribution semantics of the paper represents an aggregate answer as a
random variable with finite support.  :class:`~repro.prob.distribution.DiscreteDistribution`
is the library-wide representation of such variables.
"""

from repro.prob.distribution import DiscreteDistribution

__all__ = ["DiscreteDistribution"]
