"""Finite discrete probability distributions over numeric values.

The distribution semantics (paper Section III-B, Equation 1) answers an
aggregate query with a random variable of finite support: each possible
aggregate value paired with the probability that it is the correct one.
:class:`DiscreteDistribution` is that random variable.  It is immutable,
hashable on its support, and offers the derived quantities the other two
semantics need (Section III-B notes that range and expected value are
projections of the distribution):

* :meth:`DiscreteDistribution.expected_value` — Equation 2;
* :attr:`DiscreteDistribution.support` — whose min/max give the range.

Probabilities are validated to sum to 1 within a tolerance, since the
algorithms build them from floating-point products.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Mapping

from repro.exceptions import EvaluationError

#: Tolerance used when checking that probabilities sum to one.  The by-tuple
#: dynamic programs multiply thousands of floats, so exact equality is not
#: achievable; 1e-6 is far coarser than accumulated error yet tight enough to
#: catch genuine mistakes (a dropped outcome contributes at least one full
#: mapping probability).
PROBABILITY_TOLERANCE = 1e-6


class DiscreteDistribution:
    """An immutable probability distribution with finite numeric support.

    Parameters
    ----------
    outcomes:
        Mapping from value to probability, or an iterable of
        ``(value, probability)`` pairs.  Duplicate values are merged by
        summing their probabilities (this implements Equation 1 of the
        paper, which sums the probabilities of all mappings/sequences that
        yield the same aggregate value).
    normalize:
        When true, rescale the probabilities to sum to exactly 1.  Used by
        sampling estimators; the exact algorithms leave it off so that
        validation can catch bugs.
    check:
        When true (default), verify that each probability lies in [0, 1]
        and that the total is 1 within :data:`PROBABILITY_TOLERANCE`.

    Examples
    --------
    >>> d = DiscreteDistribution({3: 0.6, 2: 0.4})
    >>> d.expected_value()
    2.6
    >>> d.min(), d.max()
    (2, 3)
    >>> d.probability_of(3)
    0.6
    """

    __slots__ = ("_outcomes",)

    def __init__(
        self,
        outcomes: Mapping[float, float] | Iterable[tuple[float, float]],
        *,
        normalize: bool = False,
        check: bool = True,
    ) -> None:
        merged: dict[float, float] = {}
        items = outcomes.items() if isinstance(outcomes, Mapping) else outcomes
        for value, probability in items:
            merged[value] = merged.get(value, 0.0) + probability
        # Outcomes with zero probability carry no information and would make
        # support-based range answers wrong, so they are dropped.
        merged = {v: p for v, p in merged.items() if p > 0.0}
        if not merged:
            raise EvaluationError("a distribution needs at least one outcome")
        if normalize:
            total = sum(merged.values())
            merged = {v: p / total for v, p in merged.items()}
        if check:
            self._validate(merged)
        self._outcomes: dict[float, float] = dict(sorted(merged.items()))

    @staticmethod
    def _validate(outcomes: Mapping[float, float]) -> None:
        for value, probability in outcomes.items():
            if not (-PROBABILITY_TOLERANCE <= probability <= 1 + PROBABILITY_TOLERANCE):
                raise EvaluationError(
                    f"probability of outcome {value!r} is {probability}, "
                    "outside [0, 1]"
                )
        total = sum(outcomes.values())
        if abs(total - 1.0) > PROBABILITY_TOLERANCE:
            raise EvaluationError(
                f"outcome probabilities sum to {total}, expected 1"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def point(cls, value: float) -> "DiscreteDistribution":
        """The degenerate distribution concentrated on ``value``."""
        return cls({value: 1.0})

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "DiscreteDistribution":
        """The empirical distribution of ``samples`` (used by estimators)."""
        counts: dict[float, int] = {}
        n = 0
        for sample in samples:
            counts[sample] = counts.get(sample, 0) + 1
            n += 1
        if n == 0:
            raise EvaluationError("cannot build a distribution from no samples")
        return cls({value: count / n for value, count in counts.items()})

    # -- accessors ---------------------------------------------------------

    @property
    def support(self) -> tuple[float, ...]:
        """All values with non-zero probability, in increasing order."""
        return tuple(self._outcomes)

    def probability_of(self, value: float) -> float:
        """P(X = value); zero for values outside the support."""
        return self._outcomes.get(value, 0.0)

    def items(self) -> Iterator[tuple[float, float]]:
        """Iterate over ``(value, probability)`` pairs in value order."""
        return iter(self._outcomes.items())

    def as_dict(self) -> dict[float, float]:
        """A copy of the outcome map."""
        return dict(self._outcomes)

    def min(self) -> float:
        """Smallest value in the support."""
        return next(iter(self._outcomes))

    def max(self) -> float:
        """Largest value in the support."""
        return next(reversed(self._outcomes))

    def expected_value(self) -> float:
        """E[X] — Equation 2 of the paper."""
        return math.fsum(v * p for v, p in self._outcomes.items())

    def variance(self) -> float:
        """Var[X] = E[X^2] - E[X]^2 (clamped at zero against rounding)."""
        mean = self.expected_value()
        second_moment = math.fsum(v * v * p for v, p in self._outcomes.items())
        return max(0.0, second_moment - mean * mean)

    def cdf(self, value: float) -> float:
        """P(X <= value)."""
        return math.fsum(p for v, p in self._outcomes.items() if v <= value)

    def quantile(self, q: float) -> float:
        """The smallest support value ``v`` with ``cdf(v) >= q``."""
        if not 0.0 <= q <= 1.0:
            raise EvaluationError(f"quantile level must be in [0, 1], got {q}")
        cumulative = 0.0
        last = self.max()
        for value, probability in self._outcomes.items():
            cumulative += probability
            if cumulative >= q - PROBABILITY_TOLERANCE:
                return value
        return last

    # -- algebra -----------------------------------------------------------

    def map(self, fn) -> "DiscreteDistribution":
        """The distribution of ``fn(X)`` (merges colliding images)."""
        return DiscreteDistribution(
            ((fn(v), p) for v, p in self._outcomes.items()), check=False
        )

    def scale(self, factor: float) -> "DiscreteDistribution":
        """The distribution of ``factor * X``."""
        return self.map(lambda v: factor * v)

    def shift(self, offset: float) -> "DiscreteDistribution":
        """The distribution of ``X + offset``."""
        return self.map(lambda v: v + offset)

    def convolve(self, other: "DiscreteDistribution") -> "DiscreteDistribution":
        """The distribution of ``X + Y`` for independent ``X``, ``Y``.

        This is the elementary step of the naive by-tuple SUM distribution:
        each tuple contributes an independent per-tuple value distribution,
        and the aggregate is their sum.  Beware: the support may grow
        multiplicatively — exactly the exponential blow-up the paper
        describes for by-tuple/distribution SUM.
        """
        outcomes: dict[float, float] = {}
        for v1, p1 in self._outcomes.items():
            for v2, p2 in other._outcomes.items():
                key = v1 + v2
                outcomes[key] = outcomes.get(key, 0.0) + p1 * p2
        return DiscreteDistribution(outcomes, check=False)

    def mix(
        self, other: "DiscreteDistribution", weight: float
    ) -> "DiscreteDistribution":
        """The mixture ``weight * X + (1 - weight) * Y`` (of measures)."""
        if not 0.0 <= weight <= 1.0:
            raise EvaluationError(f"mixture weight must be in [0, 1], got {weight}")
        outcomes: dict[float, float] = {
            v: p * weight for v, p in self._outcomes.items()
        }
        for v, p in other._outcomes.items():
            outcomes[v] = outcomes.get(v, 0.0) + p * (1.0 - weight)
        return DiscreteDistribution(outcomes, check=False)

    # -- comparisons -------------------------------------------------------

    def approx_equal(
        self, other: "DiscreteDistribution", tolerance: float = 1e-9
    ) -> bool:
        """True when probabilities agree pointwise within ``tolerance``.

        Support values are compared exactly; use this only when both sides
        were computed from the same underlying values (e.g. a PTIME
        algorithm versus the naive enumeration on identical data).  A
        value present on only one side counts as probability zero on the
        other: complementary-probability arithmetic (``1 - sum(p_i)``)
        can leave a residual outcome of ~1e-16 mass on one side, and such
        a residue must not distinguish otherwise-equal distributions.
        """
        return all(
            abs(self._outcomes.get(v, 0.0) - other._outcomes.get(v, 0.0))
            <= tolerance
            for v in set(self._outcomes) | set(other._outcomes)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiscreteDistribution):
            return NotImplemented
        return self._outcomes == other._outcomes

    def __hash__(self) -> int:
        return hash(tuple(self._outcomes.items()))

    def __len__(self) -> int:
        return len(self._outcomes)

    def __iter__(self) -> Iterator[float]:
        return iter(self._outcomes)

    def __repr__(self) -> str:
        inner = ", ".join(f"{v!r}: {p:.6g}" for v, p in self._outcomes.items())
        return f"DiscreteDistribution({{{inner}}})"
