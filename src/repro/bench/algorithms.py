"""Registry of benchmarkable algorithms under their paper names.

Every algorithm the paper's figures time is available here as a named
closure over a :class:`BenchContext`:

====================  ========================================================
name                  implementation
====================  ========================================================
ByTupleRangeCOUNT     Figure 2 (scalar, or vectorized when the context says)
ByTuplePDCOUNT        Figure 3 dynamic program
ByTupleExpValCOUNT    expectation of the Figure 3 distribution
ByTupleRangeSUM       Figure 4
ByTupleExpValSUM      Theorem 4 -> by-table on the context's SQL backend
ByTupleRangeAVG       tight greedy (Section IV-B)
ByTupleRangeMAX/MIN   Figure 5
ByTuplePDSUM          naive sequence enumeration (no PTIME algorithm)
ByTuplePDAVG          naive
ByTupleExpValAVG      naive
ByTuplePDMAX          naive
ByTupleExpValMAX      naive
ByTableCOUNT/...      generic Figure 1 on the SQL backend (distribution)
====================  ========================================================

The context owns the expensive shared state — parsed queries, the columnar
view, the SQLite materialization — so sweeps pay for them once per size,
not once per algorithm.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core import vectorized
from repro.core.answers import AggregateAnswer
from repro.core.bytable import by_table_answer, sqlite_executor
from repro.core.bytuple_avg import by_tuple_range_avg
from repro.core.bytuple_count import (
    by_tuple_distribution_count,
    by_tuple_expected_count,
    by_tuple_range_count,
)
from repro.core.bytuple_minmax import by_tuple_range_max, by_tuple_range_min
from repro.core.bytuple_sum import by_tuple_expected_sum, by_tuple_range_sum
from repro.core.naive import naive_by_tuple_answer
from repro.core.semantics import AggregateSemantics
from repro.exceptions import EvaluationError
from repro.schema.mapping import PMapping
from repro.sql.ast import AggregateOp, AggregateQuery
from repro.sql.parser import parse_query
from repro.storage.sqlite_backend import SQLiteBackend
from repro.storage.table import Table


class BenchContext:
    """Shared state for one benchmark configuration.

    Parameters
    ----------
    table / pmapping:
        The workload.
    queries:
        One query text per aggregate operator (e.g. from
        :class:`repro.data.synthetic.Workload`).
    use_vectorized:
        Route the PTIME range algorithms and the COUNT DP through the numpy
        fast path (:mod:`repro.core.vectorized`).  Off by default: the
        scalar path matches the paper's per-tuple implementation and is
        what the figure defaults time; the vectorized path is this
        library's optimization, benchmarked by the ablation.
    max_sequences:
        Budget for the naive exponential algorithms.
    columnar / backend:
        Optionally share a pre-built columnar view / pre-materialized SQLite
        backend across contexts (a sweep that only varies the p-mapping
        reuses the same expensive table state).  A shared backend is not
        closed by :meth:`close`.
    """

    def __init__(
        self,
        table: Table,
        pmapping: PMapping,
        queries: dict[AggregateOp, str],
        *,
        use_vectorized: bool = False,
        max_sequences: int = 1 << 24,
        columnar: "vectorized.ColumnarTable | None" = None,
        backend: SQLiteBackend | None = None,
    ) -> None:
        self.table = table
        self.pmapping = pmapping
        self.use_vectorized = use_vectorized
        self.max_sequences = max_sequences
        self._queries = {op: parse_query(text) for op, text in queries.items()}
        self._columnar = columnar
        self._backend = backend
        self._owns_backend = backend is None

    def query(self, op: AggregateOp) -> AggregateQuery:
        """The parsed benchmark query for one operator."""
        try:
            return self._queries[op]
        except KeyError:
            raise EvaluationError(f"context has no query for {op.value}") from None

    @property
    def columnar(self) -> vectorized.ColumnarTable:
        """The (lazily built, cached) columnar view of the table."""
        if self._columnar is None:
            self._columnar = vectorized.ColumnarTable(self.table)
        return self._columnar

    @property
    def executor(self):
        """A SQLite-backed certain-query executor (lazily materialized)."""
        if self._backend is None:
            self._backend = SQLiteBackend()
            self._backend.materialize(self.table)
        return sqlite_executor(self._backend)

    def close(self) -> None:
        """Release the SQLite backend, if this context owns one."""
        if self._backend is not None and self._owns_backend:
            self._backend.close()
            self._backend = None


Runner = Callable[[BenchContext], AggregateAnswer]


def _range(op: AggregateOp, scalar, vector) -> Runner:
    def run(context: BenchContext) -> AggregateAnswer:
        query = context.query(op)
        if context.use_vectorized:
            return vector(context.columnar, context.pmapping, query)
        return scalar(context.table, context.pmapping, query)

    return run


def _pd_count(context: BenchContext) -> AggregateAnswer:
    query = context.query(AggregateOp.COUNT)
    if context.use_vectorized:
        return vectorized.by_tuple_distribution_count_vec(
            context.columnar, context.pmapping, query
        )
    return by_tuple_distribution_count(context.table, context.pmapping, query)


def _expval_count(context: BenchContext) -> AggregateAnswer:
    query = context.query(AggregateOp.COUNT)
    if context.use_vectorized:
        return vectorized.by_tuple_expected_count_vec(
            context.columnar, context.pmapping, query
        )
    return by_tuple_expected_count(context.table, context.pmapping, query)


def _expval_sum(context: BenchContext) -> AggregateAnswer:
    # Theorem 4: identical to by-table, so it runs on the SQL backend —
    # the paper's explanation for its low running times in Figures 11-12.
    return by_tuple_expected_sum(
        context.table,
        context.pmapping,
        context.query(AggregateOp.SUM),
        executor=context.executor,
        method="by-table",
    )


def _naive(op: AggregateOp, semantics: AggregateSemantics) -> Runner:
    def run(context: BenchContext) -> AggregateAnswer:
        return naive_by_tuple_answer(
            context.table,
            context.pmapping,
            context.query(op),
            semantics,
            max_sequences=context.max_sequences,
        )

    return run


def _by_table(op: AggregateOp) -> Runner:
    def run(context: BenchContext) -> AggregateAnswer:
        return by_table_answer(
            context.query(op),
            context.pmapping,
            context.executor,
            AggregateSemantics.DISTRIBUTION,
        )

    return run


_REGISTRY: dict[str, Runner] = {
    # PTIME by-tuple (Section IV-B)
    "ByTupleRangeCOUNT": _range(
        AggregateOp.COUNT, by_tuple_range_count, vectorized.by_tuple_range_count_vec
    ),
    "ByTuplePDCOUNT": _pd_count,
    "ByTupleExpValCOUNT": _expval_count,
    "ByTupleRangeSUM": _range(
        AggregateOp.SUM, by_tuple_range_sum, vectorized.by_tuple_range_sum_vec
    ),
    "ByTupleExpValSUM": _expval_sum,
    "ByTupleRangeAVG": _range(
        AggregateOp.AVG, by_tuple_range_avg, vectorized.by_tuple_range_avg_vec
    ),
    "ByTupleRangeMAX": _range(
        AggregateOp.MAX, by_tuple_range_max, vectorized.by_tuple_range_max_vec
    ),
    "ByTupleRangeMIN": _range(
        AggregateOp.MIN, by_tuple_range_min, vectorized.by_tuple_range_min_vec
    ),
    # No-PTIME cells: the naive exponential baseline
    "ByTuplePDSUM": _naive(AggregateOp.SUM, AggregateSemantics.DISTRIBUTION),
    "ByTuplePDAVG": _naive(AggregateOp.AVG, AggregateSemantics.DISTRIBUTION),
    "ByTupleExpValAVG": _naive(AggregateOp.AVG, AggregateSemantics.EXPECTED_VALUE),
    "ByTuplePDMAX": _naive(AggregateOp.MAX, AggregateSemantics.DISTRIBUTION),
    "ByTupleExpValMAX": _naive(AggregateOp.MAX, AggregateSemantics.EXPECTED_VALUE),
    # The by-table band the paper quotes alongside each figure
    "ByTableCOUNT": _by_table(AggregateOp.COUNT),
    "ByTableSUM": _by_table(AggregateOp.SUM),
    "ByTableAVG": _by_table(AggregateOp.AVG),
    "ByTableMAX": _by_table(AggregateOp.MAX),
    "ByTableMIN": _by_table(AggregateOp.MIN),
}

#: All registered algorithm names, in registry order.
ALGORITHM_NAMES: tuple[str, ...] = tuple(_REGISTRY)


def get_algorithm(name: str) -> Runner:
    """Look up a registered algorithm by its paper name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EvaluationError(
            f"unknown algorithm {name!r}; known: {', '.join(_REGISTRY)}"
        ) from None
