"""One driver per paper table/figure (the per-experiment index of DESIGN.md).

Every ``figureN`` function regenerates the corresponding experiment of the
paper's Section V at a laptop-friendly default scale, prints the timing
series, runs the qualitative *shape checks* the reproduction must
preserve, and returns ``True`` when all of them pass.  The paper-scale
parameters are available through keyword arguments (see each docstring)
and the ``--full`` flag of the CLI.

Two regimes are configured deliberately (EXPERIMENTS.md, "substrate speed
ratios"): Figure 10 times the vectorized by-tuple loops against the
DBMS-backed ByTupleExpValSUM (the paper's fast-loop-vs-many-queries
regime), while Figures 9, 11 and 12 time the scalar per-tuple loops
(≈ the paper's Java per-tuple costs) against the DBMS.
"""

from __future__ import annotations

import random

from repro.bench.algorithms import BenchContext
from repro.bench.reporting import (
    ShapeCheck,
    check_dominates,
    check_growth_at_most_linear,
    check_growth_superlinear,
    check_stays_fast,
    print_report,
)
from repro.bench.runner import run_sweep
from repro.core.planner import format_complexity_matrix
from repro.core.semantics import AggregateSemantics, MappingSemantics
from repro.data import ebay, synthetic
from repro.sql.ast import AggregateOp

#: Query texts over the eBay mediated schema, one per operator.
EBAY_QUERIES = {
    AggregateOp.COUNT: "SELECT COUNT(*) FROM T2 WHERE price < 300",
    AggregateOp.SUM: "SELECT SUM(price) FROM T2",
    AggregateOp.AVG: "SELECT AVG(price) FROM T2",
    AggregateOp.MAX: "SELECT MAX(price) FROM T2",
    AggregateOp.MIN: "SELECT MIN(price) FROM T2",
}

#: The exponential algorithms of Figures 7-8 (the paper benchmarks all
#: operators except MIN).
EXPONENTIAL_ALGORITHMS = (
    "ByTuplePDMAX",
    "ByTupleExpValMAX",
    "ByTuplePDAVG",
    "ByTupleExpValAVG",
    "ByTuplePDSUM",
)

#: The PTIME algorithms those figures show hugging the x axis.
PTIME_ALGORITHMS = (
    "ByTupleRangeMAX",
    "ByTupleRangeCOUNT",
    "ByTuplePDCOUNT",
    "ByTupleExpValCOUNT",
    "ByTupleRangeSUM",
    "ByTupleExpValSUM",
    "ByTupleRangeAVG",
)


def figure6() -> bool:
    """Figure 6: the complexity matrix (printed, and structurally checked)."""
    text = format_complexity_matrix()
    print()
    print("Figure 6 — complexity of the six semantics per aggregate")
    print(text)
    from repro.core.planner import Complexity, complexity_matrix

    matrix = complexity_matrix()
    checks = [
        ShapeCheck(
            "all by-table cells are PTIME",
            all(
                matrix[(op, MappingSemantics.BY_TABLE, sem)] == Complexity.PTIME
                for op in AggregateOp
                for sem in AggregateSemantics
            ),
        ),
        ShapeCheck(
            "by-tuple COUNT is PTIME everywhere",
            all(
                matrix[(AggregateOp.COUNT, MappingSemantics.BY_TUPLE, sem)]
                == Complexity.PTIME
                for sem in AggregateSemantics
            ),
        ),
        ShapeCheck(
            "by-tuple SUM is PTIME except under distribution",
            matrix[
                (AggregateOp.SUM, MappingSemantics.BY_TUPLE,
                 AggregateSemantics.DISTRIBUTION)
            ]
            == Complexity.OPEN,
        ),
    ]
    ok = True
    for check in checks:
        print(check)
        ok = ok and check.passed
    return ok


def figure7(
    *,
    tuple_counts: tuple[int, ...] = (4, 6, 8, 10, 12, 14, 16, 18),
    timeout: float = 10.0,
    seed: int = 0,
    verbose: bool = True,
) -> bool:
    """Figure 7: all algorithms on small (simulated) eBay prefixes.

    The paper grows the input auction by auction over its real trace; we
    grow a simulated second-price bid stream tuple by tuple.  Expected
    shape: the five exponential algorithms climb steeply / get skipped,
    the PTIME algorithms stay near the x axis.
    """
    stream = ebay.generate_auctions(8, mean_bids=4, seed=seed)

    def make_context(num_tuples: object) -> BenchContext:
        return BenchContext(
            ebay.auction_prefix(stream, int(num_tuples)),
            ebay.paper_pmapping(),
            EBAY_QUERIES,
        )

    result = run_sweep(
        "#tuples",
        tuple_counts,
        make_context,
        EXPONENTIAL_ALGORITHMS + PTIME_ALGORITHMS,
        timeout=timeout,
        verbose=verbose,
    )
    checks = [
        check_growth_superlinear(result, name) for name in EXPONENTIAL_ALGORITHMS
    ] + [check_stays_fast(result, name, 2.0) for name in PTIME_ALGORITHMS]
    return print_report(
        result,
        checks,
        title="Figure 7 — running time vs #tuples (eBay, 2 mappings)",
        notes="(paper: exponential algorithms exceed 10 days at 36 tuples; "
        "PTIME algorithms touch the x axis)",
    )


def figure8(
    *,
    tuple_count: int = 6,
    mapping_counts: tuple[int, ...] = (2, 4, 6, 8, 10),
    num_attributes: int = 20,
    timeout: float = 10.0,
    seed: int = 0,
    verbose: bool = True,
) -> bool:
    """Figure 8: all algorithms vs #mappings on tiny synthetic tables."""
    table = synthetic.generate_source_table(tuple_count, num_attributes, seed=seed)

    def make_context(num_mappings: object) -> BenchContext:
        pmapping = synthetic.generate_pmapping(
            table.relation, int(num_mappings), seed=seed + int(num_mappings)
        )
        workload = synthetic.Workload(table, pmapping)
        return BenchContext(table, pmapping, workload.queries)

    result = run_sweep(
        "#mappings",
        mapping_counts,
        make_context,
        EXPONENTIAL_ALGORITHMS + PTIME_ALGORITHMS,
        timeout=timeout,
        verbose=verbose,
    )
    checks = [
        check_growth_superlinear(result, name) for name in EXPONENTIAL_ALGORITHMS
    ] + [check_stays_fast(result, name, 2.0) for name in PTIME_ALGORITHMS]
    return print_report(
        result,
        checks,
        title=(
            "Figure 8 — running time vs #mappings "
            f"(synthetic, {num_attributes} attributes, {tuple_count} tuples)"
        ),
        notes="(paper: solid line = exponential algorithms; dashed line "
        "touching the x axis = PTIME algorithms)",
    )


_FIG9_ALGORITHMS = (
    "ByTuplePDCOUNT",
    "ByTupleExpValCOUNT",
    "ByTupleRangeCOUNT",
    "ByTupleRangeSUM",
    "ByTupleRangeAVG",
    "ByTupleRangeMAX",
    "ByTupleExpValSUM",
    "ByTableCOUNT",
)


def figure9(
    *,
    tuple_counts: tuple[int, ...] = (1000, 2000, 5000, 10000, 20000),
    num_attributes: int = 50,
    num_mappings: int = 20,
    timeout: float = 20.0,
    seed: int = 0,
    verbose: bool = True,
) -> bool:
    """Figure 9: PTIME algorithms vs #tuples (medium synthetic instances).

    Expected shape: ByTuplePDCOUNT and ByTupleExpValCOUNT grow
    quadratically (O(m n^2)) and separate from the linear range
    algorithms; the paper sees them become intractable around 50k tuples.
    Scale up with ``tuple_counts=(10_000, ..., 100_000)`` for the paper's
    exact axis.
    """

    def make_context(num_tuples: object) -> BenchContext:
        workload = synthetic.generate_workload(
            int(num_tuples), num_attributes, num_mappings, seed=seed
        )
        context = BenchContext(workload.table, workload.pmapping, workload.queries)
        context.executor  # materialize SQLite outside the timed region
        return context

    result = run_sweep(
        "#tuples",
        tuple_counts,
        make_context,
        _FIG9_ALGORITHMS,
        timeout=timeout,
        verbose=verbose,
    )
    checks = [
        check_growth_superlinear(result, "ByTuplePDCOUNT", factor=1.8),
        check_growth_superlinear(result, "ByTupleExpValCOUNT", factor=1.8),
        check_growth_at_most_linear(result, "ByTupleRangeCOUNT"),
        check_growth_at_most_linear(result, "ByTupleRangeSUM"),
        check_growth_at_most_linear(result, "ByTupleRangeAVG"),
        check_growth_at_most_linear(result, "ByTupleRangeMAX"),
        check_dominates(result, "ByTuplePDCOUNT", "ByTupleRangeCOUNT", factor=3.0),
    ]
    return print_report(
        result,
        checks,
        title=(
            "Figure 9 — running time vs #tuples "
            f"(synthetic, {num_attributes} attributes, {num_mappings} mappings)"
        ),
        notes="(paper: the two COUNT distribution/expected-value algorithms "
        "separate quadratically from the linear range algorithms)",
    )


_FIG10_ALGORITHMS = (
    "ByTupleExpValSUM",
    "ByTupleRangeMAX",
    "ByTupleRangeCOUNT",
    "ByTupleRangeSUM",
    "ByTupleRangeAVG",
)


def figure10(
    *,
    mapping_counts: tuple[int, ...] = (10, 50, 100, 150, 200, 250),
    num_tuples: int = 20000,
    num_attributes: int = 260,
    timeout: float = 90.0,
    seed: int = 0,
    verbose: bool = True,
) -> bool:
    """Figure 10: PTIME algorithms vs #mappings (wide synthetic table).

    Expected shape: ByTupleExpValSUM — a by-table algorithm issuing one SQL
    query per mapping — grows roughly linearly in #mappings and dominates;
    the by-tuple range algorithms barely move.  The range algorithms run
    vectorized here, matching the paper's fast in-process loops (see the
    module docstring).  The paper's exact scale is ``num_tuples=50_000,
    num_attributes=500``.
    """
    table = synthetic.generate_source_table(num_tuples, num_attributes, seed=seed)
    from repro.core.vectorized import ColumnarTable
    from repro.storage.sqlite_backend import SQLiteBackend

    columnar = ColumnarTable(table)
    backend = SQLiteBackend()
    backend.materialize(table)
    try:

        def make_context(num_mappings: object) -> BenchContext:
            pmapping = synthetic.generate_pmapping(
                table.relation, int(num_mappings), seed=seed + int(num_mappings)
            )
            workload = synthetic.Workload(table, pmapping)
            return BenchContext(
                table,
                pmapping,
                workload.queries,
                use_vectorized=True,
                columnar=columnar,
                backend=backend,
            )

        result = run_sweep(
            "#mappings",
            mapping_counts,
            make_context,
            _FIG10_ALGORITHMS,
            timeout=timeout,
            verbose=verbose,
        )
    finally:
        backend.close()
    expval_series = [s for s in result.seconds["ByTupleExpValSUM"] if s is not None]
    climbs = (
        len(expval_series) >= 2
        and expval_series[-1] >= 4.0 * max(expval_series[0], 1e-4)
    )
    checks = [
        check_dominates(result, "ByTupleExpValSUM", "ByTupleRangeSUM", factor=2.0),
        check_dominates(result, "ByTupleExpValSUM", "ByTupleRangeMAX", factor=2.0),
        ShapeCheck(
            "ByTupleExpValSUM climbs with #mappings (one query per mapping)",
            climbs,
            f"{expval_series[0]:.3f}s -> {expval_series[-1]:.3f}s"
            if len(expval_series) >= 2 else "not enough points",
        ),
    ]
    return print_report(
        result,
        checks,
        title=(
            "Figure 10 — running time vs #mappings "
            f"(synthetic, {num_attributes} attributes, {num_tuples} tuples)"
        ),
        notes="(paper: ByTupleExpValSUM must issue as many queries as "
        "mappings and climbs; the other four barely increase)",
    )


_FIG11_ALGORITHMS = (
    "ByTupleRangeMAX",
    "ByTupleRangeAVG",
    "ByTupleRangeSUM",
    "ByTupleRangeCOUNT",
    "ByTupleExpValSUM",
)


def _large_tuple_sweep(
    figure_name: str,
    tuple_counts: tuple[int, ...],
    num_attributes: int,
    num_mappings: int,
    *,
    vectorized: bool,
    timeout: float,
    seed: int,
    verbose: bool,
    notes: str,
) -> bool:
    def make_context(num_tuples: object) -> BenchContext:
        workload = synthetic.generate_workload(
            int(num_tuples), num_attributes, num_mappings, seed=seed
        )
        context = BenchContext(
            workload.table,
            workload.pmapping,
            workload.queries,
            use_vectorized=vectorized,
        )
        context.executor  # materialize SQLite outside the timed region
        if vectorized:
            context.columnar  # build the numpy view outside it too
        return context

    result = run_sweep(
        "#tuples",
        tuple_counts,
        make_context,
        _FIG11_ALGORITHMS,
        timeout=timeout,
        verbose=verbose,
    )
    checks = [
        check_growth_at_most_linear(result, name)
        for name in _FIG11_ALGORITHMS
        if name != "ByTupleExpValSUM"
    ]
    if not vectorized:
        # The paper's headline for these figures: the Theorem-4 algorithm,
        # running on the DBMS, is far below the in-process range scans.
        checks.append(
            check_dominates(result, "ByTupleRangeSUM", "ByTupleExpValSUM",
                            factor=2.0)
        )
    return print_report(
        result,
        checks,
        title=(
            f"{figure_name} — running time vs #tuples "
            f"(synthetic, {num_attributes} attributes, {num_mappings} mappings"
            f"{', vectorized' if vectorized else ''})"
        ),
        notes=notes,
    )


def figure11(
    *,
    tuple_counts: tuple[int, ...] = (20000, 50000, 100000, 200000),
    num_attributes: int = 50,
    num_mappings: int = 20,
    vectorized: bool = False,
    timeout: float = 120.0,
    seed: int = 0,
    verbose: bool = True,
) -> bool:
    """Figure 11: the scalable by-tuple algorithms into large tuple counts.

    Default: scalar loops (≈ the paper's per-tuple costs) at reduced scale.
    ``vectorized=True`` with ``tuple_counts=(1_000_000, ..., 5_000_000)``
    reaches the paper's axis on a laptop.
    """
    return _large_tuple_sweep(
        "Figure 11",
        tuple_counts,
        num_attributes,
        num_mappings,
        vectorized=vectorized,
        timeout=timeout,
        seed=seed,
        verbose=verbose,
        notes="(paper: range algorithms are linear up to 5M tuples; "
        "ByTupleExpValSUM is much lower — it runs on the DBMS)",
    )


def figure12(
    *,
    tuple_counts: tuple[int, ...] = (200000, 500000, 1000000),
    num_attributes: int = 20,
    num_mappings: int = 5,
    vectorized: bool = False,
    timeout: float = 180.0,
    seed: int = 0,
    verbose: bool = True,
) -> bool:
    """Figure 12: 15-30M tuples in the paper; defaults scale that down.

    ``vectorized=True`` with ``tuple_counts=(15_000_000, ..., 30_000_000)``
    reproduces the paper's axis given ~8 GB of RAM.
    """
    return _large_tuple_sweep(
        "Figure 12",
        tuple_counts,
        num_attributes,
        num_mappings,
        vectorized=vectorized,
        timeout=timeout,
        seed=seed,
        verbose=verbose,
        notes="(paper: the same linear scaling holds from 15M to 30M tuples)",
    )


def table3(verbose: bool = True) -> bool:
    """Table III: the six semantics of query Q1 on the Table I instance."""
    from repro.core.engine import AggregationEngine
    from repro.data import realestate

    engine = AggregationEngine(
        [realestate.paper_instance()],
        realestate.paper_pmapping(),
        allow_exponential=True,
    )
    answers = engine.answer_six(realestate.Q1)
    if verbose:
        print()
        print("Table III — the six semantics of COUNT query Q1")
        for (mapping_sem, aggregate_sem), answer in answers.items():
            print(f"  {mapping_sem.value:>9} / {aggregate_sem.value:<15} {answer!r}")
        print(
            "(paper's by-tuple row: [1, 3]; 1@0.16, 2@0.48, 3@0.36; 2.2 — "
            "reproduced exactly.  The paper's by-table row is inconsistent "
            "with its own Table I; see EXPERIMENTS.md)"
        )
    by_tuple_range = answers[(MappingSemantics.BY_TUPLE, AggregateSemantics.RANGE)]
    by_tuple_expected = answers[
        (MappingSemantics.BY_TUPLE, AggregateSemantics.EXPECTED_VALUE)
    ]
    return (
        by_tuple_range.as_tuple() == (1, 3)
        and abs(by_tuple_expected.value - 2.2) < 1e-9
    )


def ablation_vectorized(
    *,
    num_tuples: int = 200000,
    num_attributes: int = 20,
    num_mappings: int = 10,
    seed: int = 0,
    verbose: bool = True,
) -> bool:
    """Ablation: scalar versus vectorized PTIME range algorithms.

    Quantifies the speedup of :mod:`repro.core.vectorized` (this library's
    optimization — the paper's future work names "optimizing some of our
    algorithms, including the by-tuple/range semantics of COUNT and SUM").
    """
    from repro.bench.runner import time_once
    from repro.bench.algorithms import get_algorithm

    workload = synthetic.generate_workload(
        num_tuples, num_attributes, num_mappings, seed=seed
    )
    scalar_context = BenchContext(
        workload.table, workload.pmapping, workload.queries, use_vectorized=False
    )
    vector_context = BenchContext(
        workload.table, workload.pmapping, workload.queries, use_vectorized=True
    )
    vector_context.columnar  # build outside the timed region
    ok = True
    if verbose:
        print()
        print(
            f"Ablation — scalar vs vectorized ({num_tuples} tuples, "
            f"{num_mappings} mappings)"
        )
    for name in ("ByTupleRangeCOUNT", "ByTupleRangeSUM", "ByTupleRangeAVG",
                 "ByTupleRangeMAX"):
        runner = get_algorithm(name)
        scalar_time = time_once(lambda: runner(scalar_context))
        vector_time = time_once(lambda: runner(vector_context))
        speedup = scalar_time / max(vector_time, 1e-9)
        ok = ok and speedup > 3.0
        if verbose:
            print(
                f"  {name:<22} scalar {scalar_time:8.4f}s   "
                f"vectorized {vector_time:8.4f}s   speedup x{speedup:,.0f}"
            )
    scalar_context.close()
    vector_context.close()
    return ok


def ablation_expected_count(
    *,
    tuple_counts: tuple[int, ...] = (500, 1000, 2000, 4000),
    num_attributes: int = 20,
    num_mappings: int = 10,
    seed: int = 0,
    verbose: bool = True,
) -> bool:
    """Ablation: ByTupleExpValCOUNT via the DP versus linearity of expectation.

    The paper computes the expected COUNT from the full Figure 3
    distribution (O(m n^2)); linearity of expectation gives the same number
    in O(m n).  Both values must agree; the timings separate quadratically.
    """
    from repro.bench.runner import time_once
    from repro.core.bytuple_count import by_tuple_expected_count
    from repro.sql.parser import parse_query

    ok = True
    if verbose:
        print()
        print("Ablation — expected COUNT: distribution DP vs linear form")
    for num_tuples in tuple_counts:
        workload = synthetic.generate_workload(
            num_tuples, num_attributes, num_mappings, seed=seed
        )
        query = parse_query(workload.query(AggregateOp.COUNT))
        dp_answer = None
        linear_answer = None

        def run_dp():
            nonlocal dp_answer
            dp_answer = by_tuple_expected_count(
                workload.table, workload.pmapping, query, method="distribution"
            )

        def run_linear():
            nonlocal linear_answer
            linear_answer = by_tuple_expected_count(
                workload.table, workload.pmapping, query, method="linear"
            )

        dp_time = time_once(run_dp)
        linear_time = time_once(run_linear)
        agree = abs(dp_answer.value - linear_answer.value) < 1e-6
        ok = ok and agree
        if verbose:
            print(
                f"  #tuples={num_tuples:>6}  DP {dp_time:8.4f}s  "
                f"linear {linear_time:8.4f}s  values agree: {agree}"
            )
    return ok


def ablation_avg_counter_method(
    *,
    trials: int = 200,
    seed: int = 0,
    verbose: bool = True,
) -> bool:
    """Ablation: the paper's AVG counter sketch versus the tight greedy.

    On random instances whose tuples all qualify under every mapping the
    two coincide; with partial qualification the counter method can return
    an interval missing achievable averages (DESIGN.md, invariant notes).
    This ablation measures how often and by how much.
    """
    from repro.core.bytuple_avg import (
        by_tuple_range_avg,
        by_tuple_range_avg_counter_method,
    )
    from repro.sql.parser import parse_query

    rng = random.Random(seed)
    diverged = 0
    max_gap = 0.0
    for trial in range(trials):
        workload = synthetic.generate_workload(
            rng.randint(2, 8), 6, rng.randint(2, 4), seed=trial
        )
        query = parse_query(workload.query(AggregateOp.AVG))
        tight = by_tuple_range_avg(workload.table, workload.pmapping, query)
        counter = by_tuple_range_avg_counter_method(
            workload.table, workload.pmapping, query
        )
        if not tight.is_defined:
            continue
        gap = max(
            abs((tight.low or 0) - (counter.low or 0)),
            abs((tight.high or 0) - (counter.high or 0)),
        )
        if gap > 1e-9:
            diverged += 1
            max_gap = max(max_gap, gap)
        # The tight interval always covers at least as much as achievable;
        # the counter interval must lie inside-or-equal on forced-only
        # instances (gap 0), and may be narrower otherwise.
    if verbose:
        print()
        print(
            f"Ablation — AVG counter method diverged on {diverged}/{trials} "
            f"random instances (max bound gap {max_gap:.4f})"
        )
    return True
