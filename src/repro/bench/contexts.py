"""Ready-made benchmark contexts used by the pytest-benchmark suite."""

from __future__ import annotations

from repro.bench.algorithms import BenchContext
from repro.data import ebay, synthetic


def make_synthetic_context(
    num_tuples: int,
    num_attributes: int,
    num_mappings: int,
    *,
    seed: int = 0,
    use_vectorized: bool = False,
    prematerialize: bool = False,
    prebuild_columnar: bool = False,
) -> BenchContext:
    """One Section V synthetic workload wrapped in a bench context.

    ``prematerialize`` loads the SQLite backend and ``prebuild_columnar``
    the numpy view up front, so benchmarks time only the algorithms.
    """
    workload = synthetic.generate_workload(
        num_tuples, num_attributes, num_mappings, seed=seed
    )
    context = BenchContext(
        workload.table,
        workload.pmapping,
        workload.queries,
        use_vectorized=use_vectorized,
    )
    if prematerialize:
        context.executor  # noqa: B018 — materialize outside the timed region
    if prebuild_columnar:
        context.columnar  # noqa: B018
    return context


def make_ebay_context(num_tuples: int, *, seed: int = 0) -> BenchContext:
    """A small eBay prefix context (Figure 7 style)."""
    from repro.bench.experiments import EBAY_QUERIES

    stream = ebay.generate_auctions(8, mean_bids=4, seed=seed)
    return BenchContext(
        ebay.auction_prefix(stream, num_tuples),
        ebay.paper_pmapping(),
        EBAY_QUERIES,
    )
