"""Compare a fresh benchmark run against a committed baseline.

The comparison is per case ("row"), on the **median**: a row regresses
when its fresh median exceeds its tolerance band

    ``baseline_median * factor + slack``

where ``factor`` absorbs machine-to-machine and run-to-run variance and
``slack`` (an absolute floor, seconds) keeps microsecond-scale rows from
tripping the gate on scheduler jitter.  A baseline case may carry its own
``"tolerance_factor"`` field to widen (or tighten) its band — the
per-row override for known-noisy measurements.

Two modes: **fail** (regressions exit non-zero — the CI gate on a
machine comparable to the baseline's) and **warn** (report only — CI
runners with unknown hardware).  Cases present in only one document are
reported (``new`` / ``missing``) and ``missing`` counts as a failure in
fail mode: a silently dropped benchmark is how coverage rots.

Produced and consumed by ``scripts/bench_regression_check.py``; the
document format is :mod:`repro.bench.harness`'s schema-versioned
``BENCH_<suite>.json``.
"""

from __future__ import annotations

#: Default multiplicative tolerance on the baseline median.
DEFAULT_FACTOR = 2.5
#: Default absolute slack in seconds added to every band.
DEFAULT_SLACK = 0.005

_FAILING = ("slower", "missing")


class RowComparison:
    """One case's baseline-vs-fresh verdict."""

    __slots__ = ("name", "baseline", "current", "allowed", "status")

    def __init__(
        self,
        name: str,
        baseline: float | None,
        current: float | None,
        allowed: float | None,
        status: str,
    ) -> None:
        self.name = name
        self.baseline = baseline
        self.current = current
        self.allowed = allowed
        self.status = status

    @property
    def ratio(self) -> float | None:
        """current / baseline median, when both exist."""
        if self.baseline and self.current is not None:
            return self.current / self.baseline
        return None

    @property
    def failing(self) -> bool:
        return self.status in _FAILING

    def __repr__(self) -> str:
        return f"RowComparison({self.name!r}, {self.status})"


class RegressionReport:
    """Every row comparison of one suite, plus environment context."""

    def __init__(
        self,
        suite: str,
        rows: list[RowComparison],
        *,
        baseline_env: dict,
        current_env: dict,
    ) -> None:
        self.suite = suite
        self.rows = rows
        self.baseline_env = baseline_env
        self.current_env = current_env

    def regressions(self) -> list[RowComparison]:
        """The rows that fail the gate (slower or missing)."""
        return [row for row in self.rows if row.failing]

    def passed(self, mode: str = "fail") -> bool:
        """True when the gate passes: always in warn mode, else no
        regressions."""
        if mode == "warn":
            return True
        return not self.regressions()

    def environment_notes(self) -> list[str]:
        """Baseline-vs-current environment differences worth flagging."""
        notes = []
        for key in ("python", "platform", "cpu_count", "git_sha"):
            base = self.baseline_env.get(key)
            here = self.current_env.get(key)
            if base != here:
                notes.append(f"{key}: baseline {base!r} vs current {here!r}")
        return notes

    def render_text(self) -> str:
        """A fixed-width report: one row per case, then the verdict."""
        width = max([len(row.name) for row in self.rows] + [4])
        header = (
            f"{'case':<{width}}{'baseline ms':>13}{'current ms':>13}"
            f"{'ratio':>8}{'allowed ms':>13}  status"
        )
        lines = [f"regression check: suite {self.suite}", header,
                 "-" * len(header)]

        def ms(value: float | None) -> str:
            return "-" if value is None else f"{value * 1e3:.3f}"

        for row in self.rows:
            ratio = "-" if row.ratio is None else f"{row.ratio:.2f}x"
            lines.append(
                f"{row.name:<{width}}{ms(row.baseline):>13}"
                f"{ms(row.current):>13}{ratio:>8}{ms(row.allowed):>13}"
                f"  {row.status}"
            )
        notes = self.environment_notes()
        if notes:
            lines.append("environment differs from baseline:")
            lines.extend(f"  {note}" for note in notes)
        bad = self.regressions()
        if bad:
            lines.append(
                f"{len(bad)} of {len(self.rows)} case(s) regressed: "
                + ", ".join(row.name for row in bad)
            )
        else:
            lines.append(f"all {len(self.rows)} case(s) within tolerance")
        return "\n".join(lines)


def _medians(document: dict) -> dict[str, dict]:
    return {case["name"]: case for case in document.get("cases", [])}


def compare(
    baseline: dict,
    current: dict,
    *,
    factor: float = DEFAULT_FACTOR,
    slack: float = DEFAULT_SLACK,
) -> RegressionReport:
    """Diff two harness documents row by row.

    ``baseline`` and ``current`` are :func:`repro.bench.harness.load_result`
    documents of the same suite (a mismatch raises ``ValueError``).
    """
    if baseline.get("suite") != current.get("suite"):
        raise ValueError(
            f"suite mismatch: baseline {baseline.get('suite')!r} vs "
            f"current {current.get('suite')!r}"
        )
    base_cases = _medians(baseline)
    fresh_cases = _medians(current)
    rows: list[RowComparison] = []
    for name, base in base_cases.items():
        base_median = base["seconds"]["median"]
        row_factor = base.get("tolerance_factor", factor)
        allowed = base_median * row_factor + slack
        fresh = fresh_cases.get(name)
        if fresh is None:
            rows.append(RowComparison(name, base_median, None, allowed,
                                      "missing"))
            continue
        fresh_median = fresh["seconds"]["median"]
        status = "ok" if fresh_median <= allowed else "slower"
        if status == "ok" and base_median > 0 and \
                fresh_median < base_median / row_factor:
            status = "faster"
        rows.append(
            RowComparison(name, base_median, fresh_median, allowed, status)
        )
    for name, fresh in fresh_cases.items():
        if name not in base_cases:
            rows.append(
                RowComparison(name, None, fresh["seconds"]["median"], None,
                              "new")
            )
    return RegressionReport(
        baseline.get("suite", "?"),
        rows,
        baseline_env=baseline.get("environment", {}),
        current_env=current.get("environment", {}),
    )
