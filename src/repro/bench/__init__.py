"""Benchmark harness reproducing the paper's Section V experiments.

* :mod:`repro.bench.algorithms` — a registry binding the paper's algorithm
  names (ByTupleRangeCOUNT, ByTuplePDMAX, ...) to runnable closures over a
  benchmark context;
* :mod:`repro.bench.runner` — timed parameter sweeps with per-algorithm
  timeouts (an algorithm that blows its budget is skipped at larger sizes,
  like the paper's "more than 10 days for 4 auctions" runs);
* :mod:`repro.bench.reporting` — fixed-width series tables matching the
  figures' axes;
* :mod:`repro.bench.experiments` — one driver per paper figure
  (:func:`~repro.bench.experiments.figure7` ... ``figure12``), each
  printing the series it regenerates plus automated shape checks;
* :mod:`repro.bench.harness` — registered continuous-benchmark suites
  with warmup, repeats, median/p95 statistics, and an environment
  fingerprint, persisted as schema-versioned ``BENCH_<suite>.json``;
* :mod:`repro.bench.regression` — per-row tolerance-band comparison of a
  fresh harness run against a committed baseline (the CI perf gate).
"""

from repro.bench.algorithms import ALGORITHM_NAMES, BenchContext, get_algorithm
from repro.bench.harness import (
    BenchCase,
    Suite,
    get_suite,
    register_suite,
    run_suite,
    suite_names,
)
from repro.bench.regression import RegressionReport, compare
from repro.bench.runner import SweepResult, TimingStats, run_sweep, time_stats
from repro.bench.reporting import format_sweep

__all__ = [
    "ALGORITHM_NAMES",
    "BenchCase",
    "BenchContext",
    "RegressionReport",
    "Suite",
    "SweepResult",
    "TimingStats",
    "compare",
    "format_sweep",
    "get_algorithm",
    "get_suite",
    "register_suite",
    "run_suite",
    "run_sweep",
    "suite_names",
    "time_stats",
]
