"""Benchmark harness reproducing the paper's Section V experiments.

* :mod:`repro.bench.algorithms` — a registry binding the paper's algorithm
  names (ByTupleRangeCOUNT, ByTuplePDMAX, ...) to runnable closures over a
  benchmark context;
* :mod:`repro.bench.runner` — timed parameter sweeps with per-algorithm
  timeouts (an algorithm that blows its budget is skipped at larger sizes,
  like the paper's "more than 10 days for 4 auctions" runs);
* :mod:`repro.bench.reporting` — fixed-width series tables matching the
  figures' axes;
* :mod:`repro.bench.experiments` — one driver per paper figure
  (:func:`~repro.bench.experiments.figure7` ... ``figure12``), each
  printing the series it regenerates plus automated shape checks.
"""

from repro.bench.algorithms import ALGORITHM_NAMES, BenchContext, get_algorithm
from repro.bench.runner import SweepResult, run_sweep
from repro.bench.reporting import format_sweep

__all__ = [
    "ALGORITHM_NAMES",
    "BenchContext",
    "SweepResult",
    "format_sweep",
    "get_algorithm",
    "run_sweep",
]
