"""Built-in benchmark suites for the :mod:`repro.bench.harness` registry.

One suite per slice of the system, mirroring the ``benchmarks/bench_*.py``
scripts (each script names its suite in a ``HARNESS_SUITE`` constant and
forwards ``--harness`` runs here):

==============  =========================================================
suite           covers
==============  =========================================================
quick           the CI regression gate: sub-second cases across the
                compile/plan/execute pipeline, kernels, matcher, and
                streaming (baseline: ``BENCH_quick.json``)
engine          per-cell engine answering on the paper instance (fig 6)
exponential     the naive enumeration algorithms at tiny sizes (figs 7-8)
kernels         the PTIME scalar and vectorized kernels at medium size
                (figs 9-12, ablation_vectorized)
matcher         similarity, assignment, and top-K ranking (bench_matcher)
streaming       batch vs streaming vs vectorized (bench_streaming)
parallel        sequential vs sharded pool execution at 200k tuples
                (bench_parallel; baseline: ``BENCH_parallel.json``)
prepared-reuse  one-shot answer() vs prepared plans (bench_prepared_reuse)
columnar        row-walk scalar kernels vs the columnar array kernels on
                the same cells (baseline: ``BENCH_columnar.json``)
obs-overhead    telemetry on vs off: the same prepared answer loop with
                no sink, under an in-memory sink, and the query-log /
                exporter primitives (baseline: ``BENCH_obs_overhead.json``)
ablations       expected-COUNT methods and the MAX-distribution
                extension (bench_ablation_*)
serve           query-service wire latency and flood throughput at 1x
                and 2x offered load (bench_serve; baseline:
                ``BENCH_serve.json``)
==============  =========================================================

Importing this module registers every suite; the harness does so lazily
on first :func:`~repro.bench.harness.get_suite` call.  Case factories
build their workload *inside* the factory (untimed), so listing suites
stays free.
"""

from __future__ import annotations

import importlib.util

from repro.bench.harness import Suite, register_suite

_HAVE_NUMPY = importlib.util.find_spec("numpy") is not None


# -- quick: the CI gate ------------------------------------------------------

quick = register_suite(Suite(
    "quick",
    "CI regression gate: pipeline, kernels, matcher, streaming (seconds)",
))


@quick.case("count.range.scalar")
def _quick_count_range():
    from repro.bench.algorithms import get_algorithm
    from repro.bench.contexts import make_synthetic_context

    context = make_synthetic_context(1000, 8, 5)
    runner = get_algorithm("ByTupleRangeCOUNT")
    return (lambda: runner(context)), context.close


@quick.case("sum.range.scalar")
def _quick_sum_range():
    from repro.bench.algorithms import get_algorithm
    from repro.bench.contexts import make_synthetic_context

    context = make_synthetic_context(1000, 8, 5)
    runner = get_algorithm("ByTupleRangeSUM")
    return (lambda: runner(context)), context.close


@quick.case("avg.range.scalar")
def _quick_avg_range():
    from repro.bench.algorithms import get_algorithm
    from repro.bench.contexts import make_synthetic_context

    context = make_synthetic_context(1000, 8, 5)
    runner = get_algorithm("ByTupleRangeAVG")
    return (lambda: runner(context)), context.close


@quick.case("count.distribution.dp")
def _quick_count_dp():
    from repro.bench.algorithms import get_algorithm
    from repro.bench.contexts import make_synthetic_context

    context = make_synthetic_context(300, 8, 5)
    runner = get_algorithm("ByTuplePDCOUNT")
    return (lambda: runner(context)), context.close


@quick.case("engine.prepared.count_range_x20")
def _quick_prepared_reuse():
    from repro.core.engine import AggregationEngine
    from repro.data import synthetic
    from repro.sql.ast import AggregateOp

    workload = synthetic.generate_workload(500, 8, 5, seed=0)
    engine = AggregationEngine([workload.table], workload.pmapping)
    prepared = engine.prepare(workload.query(AggregateOp.COUNT))

    def run():
        for _ in range(20):
            prepared.answer("by-tuple", "range")

    return run, engine.close


@quick.case("engine.answer_six.paper_q1")
def _quick_answer_six():
    from repro.core.engine import AggregationEngine
    from repro.data import realestate

    engine = AggregationEngine(
        [realestate.paper_instance()],
        realestate.paper_pmapping(),
        allow_exponential=True,
    )
    return (lambda: engine.answer_six(realestate.Q1)), engine.close


@quick.case("matcher.paper_pmapping")
def _quick_matcher():
    from repro.data import realestate
    from repro.schema.correspondence import AttributeCorrespondence
    from repro.schema.matcher import MatcherConfig, SchemaMatcher

    matcher = SchemaMatcher(
        realestate.paper_instance(),
        realestate.T1_RELATION,
        known=[
            AttributeCorrespondence("ID", "propertyID"),
            AttributeCorrespondence("price", "listPrice"),
            AttributeCorrespondence("agentPhone", "phone"),
        ],
        config=MatcherConfig(top_k=3),
    )
    return matcher.pmapping


@quick.case("streaming.sum.range")
def _quick_streaming():
    from repro.bench.contexts import make_synthetic_context
    from repro.core.streaming import RangeSumAccumulator, answer_stream
    from repro.sql.ast import AggregateOp

    context = make_synthetic_context(1000, 8, 5)

    def run():
        return answer_stream(
            iter(context.table.rows),
            context.table.relation,
            context.pmapping,
            context.query(AggregateOp.SUM),
            RangeSumAccumulator,
        )

    return run, context.close


# -- engine: figure 6 / table III -------------------------------------------

engine_suite = register_suite(Suite(
    "engine", "per-cell answering on the paper's Table I instance (fig 6)"
))


def _engine_cell_case(msem: str, asem: str):
    def factory():
        from repro.core.engine import AggregationEngine
        from repro.data import realestate

        engine = AggregationEngine(
            [realestate.paper_instance()],
            realestate.paper_pmapping(),
            allow_exponential=True,
        )
        return (lambda: engine.answer(realestate.Q1, msem, asem)), engine.close

    return factory


for _msem in ("by-table", "by-tuple"):
    for _asem in ("range", "distribution", "expected-value"):
        engine_suite.case(f"q1.{_msem}.{_asem}")(
            _engine_cell_case(_msem, _asem)
        )


# -- exponential: figures 7-8 ------------------------------------------------

exponential = register_suite(Suite(
    "exponential", "naive enumeration at tiny sizes (figs 7-8 regime)"
))


def _naive_case(algorithm: str, tuples: int, mappings: int):
    def factory():
        from repro.bench.algorithms import get_algorithm
        from repro.bench.contexts import make_synthetic_context

        context = make_synthetic_context(tuples, 8, mappings)
        runner = get_algorithm(algorithm)
        return (lambda: runner(context)), context.close

    return factory


for _name in ("ByTuplePDSUM", "ByTuplePDAVG", "ByTuplePDMAX",
              "ByTupleExpValAVG", "ByTupleExpValMAX"):
    exponential.case(f"naive.{_name}")(_naive_case(_name, 8, 2))
exponential.case("naive.many_mappings.ByTuplePDSUM")(
    _naive_case("ByTuplePDSUM", 5, 5)
)


# -- kernels: figures 9-12 and the vectorized ablation -----------------------

kernels = register_suite(Suite(
    "kernels", "PTIME scalar/vectorized kernels at medium size (figs 9-12)"
))


def _kernel_case(algorithm: str, *, tuples: int = 20000, mappings: int = 5,
                 vectorized: bool = False):
    def factory():
        from repro.bench.algorithms import get_algorithm
        from repro.bench.contexts import make_synthetic_context

        context = make_synthetic_context(
            tuples, 10, mappings,
            use_vectorized=vectorized,
            prematerialize=algorithm in ("ByTableCOUNT", "ByTupleExpValSUM"),
            prebuild_columnar=vectorized,
        )
        runner = get_algorithm(algorithm)
        return (lambda: runner(context)), context.close

    return factory


for _name in ("ByTupleRangeCOUNT", "ByTupleRangeSUM", "ByTupleRangeAVG",
              "ByTupleRangeMAX", "ByTupleRangeMIN", "ByTupleExpValSUM",
              "ByTableCOUNT"):
    kernels.case(f"scalar.{_name}")(_kernel_case(_name))
kernels.case("scalar.ByTuplePDCOUNT")(
    _kernel_case("ByTuplePDCOUNT", tuples=2000)
)
if _HAVE_NUMPY:
    for _name in ("ByTupleRangeCOUNT", "ByTupleRangeSUM", "ByTupleRangeAVG"):
        kernels.case(f"vectorized.{_name}")(
            _kernel_case(_name, vectorized=True)
        )


# -- matcher ------------------------------------------------------------------

matcher_suite = register_suite(Suite(
    "matcher", "similarity scoring, assignment, top-K ranking (bench_matcher)"
))

matcher_suite.case("paper_pmapping")(_quick_matcher)


@matcher_suite.case("hungarian.50x50")
def _matcher_hungarian():
    import random

    from repro.schema.matcher.hungarian import solve_assignment

    rng = random.Random(11)
    cost = [[rng.random() for _ in range(50)] for _ in range(50)]
    return lambda: solve_assignment(cost)


@matcher_suite.case("murty.top20_of_20x20")
def _matcher_murty():
    import random

    from repro.schema.matcher.murty import top_k_assignments

    rng = random.Random(13)
    cost = [[rng.random() for _ in range(20)] for _ in range(20)]
    return lambda: list(top_k_assignments(cost, 20))


# -- streaming ----------------------------------------------------------------

streaming_suite = register_suite(Suite(
    "streaming", "batch vs single-pass vs vectorized (bench_streaming)"
))


@streaming_suite.case("batch.sum.range")
def _streaming_batch():
    from repro.bench.contexts import make_synthetic_context
    from repro.core.bytuple_sum import by_tuple_range_sum
    from repro.sql.ast import AggregateOp

    context = make_synthetic_context(20000, 10, 5)
    query = context.query(AggregateOp.SUM)
    return (
        lambda: by_tuple_range_sum(context.table, context.pmapping, query)
    ), context.close


@streaming_suite.case("stream.sum.range")
def _streaming_stream():
    from repro.bench.contexts import make_synthetic_context
    from repro.core.streaming import RangeSumAccumulator, answer_stream
    from repro.sql.ast import AggregateOp

    context = make_synthetic_context(20000, 10, 5)

    def run():
        return answer_stream(
            iter(context.table.rows),
            context.table.relation,
            context.pmapping,
            context.query(AggregateOp.SUM),
            RangeSumAccumulator,
        )

    return run, context.close


if _HAVE_NUMPY:
    @streaming_suite.case("vectorized.sum.range")
    def _streaming_vectorized():
        from repro.bench.contexts import make_synthetic_context
        from repro.core.vectorized import by_tuple_range_sum_vec
        from repro.sql.ast import AggregateOp

        context = make_synthetic_context(20000, 10, 5, prebuild_columnar=True)
        query = context.query(AggregateOp.SUM)
        return (
            lambda: by_tuple_range_sum_vec(
                context.columnar, context.pmapping, query
            )
        ), context.close


# -- parallel -----------------------------------------------------------------

parallel_suite = register_suite(Suite(
    "parallel",
    "sequential vs sharded pool execution at 200k tuples (bench_parallel)",
))

#: Large enough that sharding can amortize worker dispatch; matches the
#: acceptance experiment (>= 200k tuples, 4 workers).
_PARALLEL_TUPLES = 200_000
_PARALLEL_ATTRIBUTES = 6
_PARALLEL_MAPPINGS = 4


def _parallel_engine_case(aggregate_op: str, asem: str, max_workers: int | None):
    def factory():
        from repro.bench.contexts import make_synthetic_context
        from repro.core.engine import AggregationEngine
        from repro.sql.ast import AggregateOp

        context = make_synthetic_context(
            _PARALLEL_TUPLES, _PARALLEL_ATTRIBUTES, _PARALLEL_MAPPINGS
        )
        query = context.query(AggregateOp[aggregate_op])
        engine = AggregationEngine(
            context.table, context.pmapping, max_workers=max_workers
        )

        def close():
            engine.close()
            context.close()

        return (lambda: engine.answer(query, "by-tuple", asem)), close

    return factory


def _parallel_streaming_case(aggregate_op: str, accumulator_name: str):
    def factory():
        from repro.bench.contexts import make_synthetic_context
        from repro.core import streaming
        from repro.sql.ast import AggregateOp

        context = make_synthetic_context(
            _PARALLEL_TUPLES, _PARALLEL_ATTRIBUTES, _PARALLEL_MAPPINGS
        )
        query = context.query(AggregateOp[aggregate_op])
        accumulator_factory = getattr(streaming, accumulator_name)

        def run():
            return streaming.answer_stream(
                iter(context.table.rows),
                context.table.relation,
                context.pmapping,
                query,
                accumulator_factory,
            )

        return run, context.close

    return factory


parallel_suite.case("streaming.sum.range", repeats=3, warmup=1)(
    _parallel_streaming_case("SUM", "RangeSumAccumulator")
)
parallel_suite.case("streaming.count.expected", repeats=3, warmup=1)(
    _parallel_streaming_case("COUNT", "ExpectedCountAccumulator")
)
parallel_suite.case("scalar.sum.range", repeats=3, warmup=1)(
    _parallel_engine_case("SUM", "range", None)
)
parallel_suite.case("pool4.sum.range", repeats=3, warmup=1)(
    _parallel_engine_case("SUM", "range", 4)
)
parallel_suite.case("pool4.count.expected", repeats=3, warmup=1)(
    _parallel_engine_case("COUNT", "expected-value", 4)
)


# -- prepared-reuse -----------------------------------------------------------

prepared_reuse = register_suite(Suite(
    "prepared-reuse", "one-shot answer() vs prepared plans (bench_prepared_reuse)"
))


@prepared_reuse.case("oneshot.count_range_x50", repeats=3)
def _reuse_oneshot():
    from repro.core.engine import AggregationEngine
    from repro.data import synthetic
    from repro.sql.ast import AggregateOp

    workload = synthetic.generate_workload(1000, 12, 10, seed=0)
    engine = AggregationEngine([workload.table], workload.pmapping)
    query = workload.query(AggregateOp.COUNT)

    def run():
        for _ in range(50):
            engine.answer(query, "by-tuple", "range")

    return run, engine.close


@prepared_reuse.case("prepared.count_range_x50", repeats=3)
def _reuse_prepared():
    from repro.core.engine import AggregationEngine
    from repro.data import synthetic
    from repro.sql.ast import AggregateOp

    workload = synthetic.generate_workload(1000, 12, 10, seed=0)
    engine = AggregationEngine([workload.table], workload.pmapping)
    prepared = engine.prepare(workload.query(AggregateOp.COUNT))

    def run():
        for _ in range(50):
            prepared.answer("by-tuple", "range")

    return run, engine.close


# -- ablations ----------------------------------------------------------------

ablations = register_suite(Suite(
    "ablations", "expected-COUNT methods, MAX-distribution extension"
))


def _expected_count_case(method: str):
    def factory():
        from repro.bench.contexts import make_synthetic_context
        from repro.core.bytuple_count import by_tuple_expected_count
        from repro.sql.ast import AggregateOp

        context = make_synthetic_context(1500, 10, 5)
        query = context.query(AggregateOp.COUNT)
        return (
            lambda: by_tuple_expected_count(
                context.table, context.pmapping, query, method=method
            )
        ), context.close

    return factory


ablations.case("expected_count.distribution")(
    _expected_count_case("distribution")
)
ablations.case("expected_count.linear")(_expected_count_case("linear"))


@ablations.case("extension.max_distribution")
def _ablation_extension_max():
    from repro.bench.contexts import make_synthetic_context
    from repro.core.extensions import by_tuple_distribution_max
    from repro.sql.ast import AggregateOp

    context = make_synthetic_context(2000, 6, 3)
    query = context.query(AggregateOp.MAX)
    return (
        lambda: by_tuple_distribution_max(
            context.table, context.pmapping, query
        )
    ), context.close


# -- columnar -----------------------------------------------------------------

columnar_suite = register_suite(Suite(
    "columnar",
    "row-walk scalar kernels vs the columnar array kernels at 50k tuples "
    "(baseline: BENCH_columnar.json)",
))

#: Large enough that the per-row interpreter overhead dominates the scalar
#: walk; the columnar view is prebuilt so both sides time only the fold.
_COLUMNAR_TUPLES = 50_000
_COLUMNAR_ATTRIBUTES = 8
_COLUMNAR_MAPPINGS = 5

#: ``(case key, scalar one-shot, vectorized one-shot, aggregate op)``.
#: The COUNT distribution cell is deliberately absent: its DP is O(n^2)
#: in the qualifying-row count, so at this size it times the DP, not the
#: storage layout.  Both expected-COUNT sides use the linear method.
_COLUMNAR_CELLS = (
    ("count.range", "by_tuple_range_count", "by_tuple_range_count_vec", "COUNT"),
    ("count.expected", "by_tuple_expected_count", "by_tuple_expected_count_vec",
     "COUNT"),
    ("sum.range", "by_tuple_range_sum", "by_tuple_range_sum_vec", "SUM"),
    ("sum.expected", "by_tuple_expected_sum", "by_tuple_expected_sum_vec", "SUM"),
    ("avg.range", "by_tuple_range_avg", "by_tuple_range_avg_vec", "AVG"),
    ("max.range", "by_tuple_range_max", "by_tuple_range_max_vec", "MAX"),
)


def _columnar_pair_case(key: str, scalar_name: str, vec_name: str, op: str,
                        *, vectorized: bool):
    def factory():
        import repro.core.bytuple_avg as avg_mod
        import repro.core.bytuple_count as count_mod
        import repro.core.bytuple_minmax as minmax_mod
        import repro.core.bytuple_sum as sum_mod
        from repro.bench.contexts import make_synthetic_context
        from repro.sql.ast import AggregateOp

        context = make_synthetic_context(
            _COLUMNAR_TUPLES, _COLUMNAR_ATTRIBUTES, _COLUMNAR_MAPPINGS,
            prebuild_columnar=vectorized,
        )
        query = context.query(AggregateOp[op])
        if vectorized:
            from repro.core import vectorized as vec_mod

            runner = getattr(vec_mod, vec_name)
            ctable = context.columnar
            return (
                lambda: runner(ctable, context.pmapping, query)
            ), context.close
        scalar = None
        for module in (count_mod, sum_mod, avg_mod, minmax_mod):
            scalar = getattr(module, scalar_name, scalar)
        if key == "count.expected":
            return (
                lambda: scalar(
                    context.table, context.pmapping, query, method="linear"
                )
            ), context.close
        return (
            lambda: scalar(context.table, context.pmapping, query)
        ), context.close

    return factory


for _key, _scalar, _vec, _op in _COLUMNAR_CELLS:
    columnar_suite.case(f"rowwalk.{_key}")(
        _columnar_pair_case(_key, _scalar, _vec, _op, vectorized=False)
    )
    if _HAVE_NUMPY:
        columnar_suite.case(f"columnar.{_key}")(
            _columnar_pair_case(_key, _scalar, _vec, _op, vectorized=True)
        )


# -- obs-overhead -------------------------------------------------------------

obs_overhead = register_suite(Suite(
    "obs-overhead",
    "telemetry on vs off: prepared answers with/without a sink, plus the "
    "query-log and Prometheus-exporter primitives (BENCH_obs_overhead.json)",
))


def _obs_answer_case(traced: bool):
    def factory():
        from repro.core.engine import AggregationEngine
        from repro.data import synthetic
        from repro.obs import trace
        from repro.sql.ast import AggregateOp

        workload = synthetic.generate_workload(1000, 8, 5, seed=0)
        engine = AggregationEngine([workload.table], workload.pmapping)
        prepared = engine.prepare(workload.query(AggregateOp.SUM))
        prepared.answer("by-tuple", "range")  # pin vectors untimed

        def run_plain():
            for _ in range(50):
                prepared.answer("by-tuple", "range")

        def run_traced():
            # A fresh sink per repeat: capacity never saturates into
            # deque-eviction noise, and every span is really recorded.
            with trace.use_sink(trace.InMemorySink(capacity=1024)):
                run_plain()

        return (run_traced if traced else run_plain), engine.close

    return factory


obs_overhead.case("answer50.sink_off", repeats=5, warmup=1)(
    _obs_answer_case(traced=False)
)
obs_overhead.case("answer50.sink_on", repeats=5, warmup=1)(
    _obs_answer_case(traced=True)
)


@obs_overhead.case("answer50.calibrate_on", repeats=5, warmup=1)
def _obs_calibrate():
    # The cost-model feedback loop on top of the plain answer loop: each
    # execution estimates, measures, and records into the feedback store.
    # Comparing against answer50.sink_off bounds the calibration overhead.
    from repro.core.engine import AggregationEngine
    from repro.data import synthetic
    from repro.sql.ast import AggregateOp

    workload = synthetic.generate_workload(1000, 8, 5, seed=0)
    engine = AggregationEngine(
        [workload.table], workload.pmapping, calibrate=True
    )
    prepared = engine.prepare(workload.query(AggregateOp.SUM))
    prepared.answer("by-tuple", "range")  # pin vectors untimed

    def run():
        for _ in range(50):
            prepared.answer("by-tuple", "range")

    return run, engine.close


@obs_overhead.case("querylog.record_x1000", repeats=5, warmup=1)
def _obs_querylog():
    from repro.obs import querylog

    log = querylog.QueryLog(capacity=256)
    record = querylog.QueryRecord(
        ts=0.0, query="SELECT SUM(value) FROM MED", lane="scalar",
        mapping_semantics="by-tuple", aggregate_semantics="range",
        status="ok", seconds=0.001, rows=1000,
    )

    def run():
        for _ in range(1000):
            log.record(record)

    return run


@obs_overhead.case("export.render_prometheus", repeats=5, warmup=1)
def _obs_export():
    from repro.obs import export
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    for index in range(100):
        registry.inc(f"bench.counter.{index}", index)
        registry.set_gauge(f"bench.gauge.{index}", float(index))
    for index in range(20):
        histogram = registry.histogram(f"bench.hist.{index}")
        for value in range(200):
            histogram.observe(float(value))

    return lambda: export.render_prometheus(registry)


# -- serve: the query service over real sockets ------------------------------

serve = register_suite(Suite(
    "serve",
    "query service latency and saturation throughput (1x and 2x offered "
    "load; baseline: BENCH_serve.json)",
))


def _serve_fixture(*, max_concurrency=4, queue_depth=8):
    """A running service on an ephemeral port + its teardown."""
    from repro.obs.metrics import MetricsRegistry
    from repro.serve import DatasetRegistry, ServeConfig, ServiceThread

    registry = DatasetRegistry()
    registry.add_synthetic(
        "bench", tuples=1000, attributes=6, mappings=5, seed=11
    )
    service = ServiceThread(
        registry,
        config=ServeConfig(
            port=0,
            max_concurrency=max_concurrency,
            queue_depth=queue_depth,
        ),
        metrics_registry=MetricsRegistry(),
    ).start()
    return service, service.stop


#: The serve bench workload: the sampling lane at a fixed sample count,
#: ~10 ms per request — slow enough to saturate, fast enough for CI.
_SERVE_REQUEST = {
    "dataset": "bench",
    "query": "SELECT SUM(a1) FROM T WHERE a1 < 800",
    "mapping_semantics": "by-tuple",
    "aggregate_semantics": "distribution",
    "samples": 60,
    "seed": 3,
}


@serve.case("roundtrip.single", repeats=30, warmup=5)
def _serve_roundtrip():
    from repro.serve import ServeClient

    service, close = _serve_fixture()
    client = ServeClient(port=service.port)

    def teardown():
        client.close()
        close()

    return (
        lambda: client.query(**_SERVE_REQUEST).answer
    ), teardown


def _serve_flood_case(offered_multiple):
    def factory():
        from repro.serve import LoadGenerator

        service, close = _serve_fixture(max_concurrency=4, queue_depth=4)
        # Saturation counts executing slots plus the bounded queue: at
        # 1x every arrival is admitted, at 2x the excess sheds.
        concurrency = (4 + 4) * offered_multiple

        def run():
            flood = LoadGenerator(
                "127.0.0.1", service.port, _SERVE_REQUEST,
                concurrency=concurrency, requests_per_worker=4,
            ).run()
            assert flood.transport_errors == 0
            assert flood.admitted > 0

        return run, close

    return factory


serve.case("flood.1x", repeats=3, warmup=1)(_serve_flood_case(1))
serve.case("flood.2x.saturated", repeats=3, warmup=1)(_serve_flood_case(2))
