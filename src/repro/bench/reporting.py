"""Text rendering and shape checks for sweep results.

The paper's evaluation reports each figure as running-time series; the
harness prints the same series as a fixed-width table and then runs
*shape checks* — the qualitative claims a reproduction should preserve
(who blows up, who stays flat, who grows how fast) — reporting PASS/FAIL
for each.

Every cell a check reads is the *median* of the cell's timed repeats
(:func:`repro.bench.runner.time_stats`), not a best-of minimum, so the
checks judge typical behaviour rather than the luckiest run.
"""

from __future__ import annotations


from repro.bench.runner import SweepResult


def format_sweep(result: SweepResult, *, title: str = "") -> str:
    """A fixed-width table: one row per x value, one column per algorithm."""
    names = list(result.seconds)
    width = max(12, max((len(n) for n in names), default=12) + 2)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = f"{result.x_label:>12}" + "".join(f"{name:>{width}}" for name in names)
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(result.xs):
        cells = []
        for name in names:
            value = result.seconds[name][i]
            cells.append(
                f"{'skipped':>{width}}" if value is None else f"{value:>{width}.4f}"
            )
        lines.append(f"{x!s:>12}" + "".join(cells))
    return "\n".join(lines)


class ShapeCheck:
    """One qualitative claim about a sweep, with a pass/fail evaluator."""

    def __init__(self, description: str, passed: bool, detail: str = "") -> None:
        self.description = description
        self.passed = passed
        self.detail = detail

    def __repr__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        tail = f" ({self.detail})" if self.detail else ""
        return f"[{status}] {self.description}{tail}"


def check_blows_up(result: SweepResult, algorithm: str) -> ShapeCheck:
    """The algorithm was skipped (exceeded its budget) before the sweep end."""
    series = result.seconds[algorithm]
    passed = series[-1] is None or (
        series[0] is not None
        and series[-1] is not None
        and series[-1] > max(series[0], 1e-4) * 50
    )
    return ShapeCheck(
        f"{algorithm} blows up along {result.x_label}",
        passed,
        f"first={series[0]}, last={series[-1]}",
    )


def check_stays_fast(
    result: SweepResult, algorithm: str, budget: float
) -> ShapeCheck:
    """The algorithm completed every point within ``budget`` seconds."""
    series = result.seconds[algorithm]
    passed = all(value is not None and value <= budget for value in series)
    worst = max((v for v in series if v is not None), default=None)
    return ShapeCheck(
        f"{algorithm} stays under {budget:g}s along {result.x_label}",
        passed,
        f"worst={worst}",
    )


def check_dominates(
    result: SweepResult, slower: str, faster: str, *, factor: float = 1.0
) -> ShapeCheck:
    """At the largest common size, ``slower`` takes >= factor x ``faster``."""
    pairs = [
        (s, f)
        for s, f in zip(result.seconds[slower], result.seconds[faster])
        if s is not None and f is not None
    ]
    if not pairs:
        # ``slower`` got skipped while ``faster`` survived — the strongest
        # form of domination.
        passed = result.last_defined(faster) is not None
        return ShapeCheck(
            f"{slower} slower than {faster}", passed, "slower was skipped"
        )
    s, f = pairs[-1]
    passed = s >= f * factor
    return ShapeCheck(
        f"{slower} >= {factor:g}x {faster} at the largest size",
        passed,
        f"{s:.4f}s vs {f:.4f}s",
    )


def check_growth_at_most_linear(
    result: SweepResult, algorithm: str, *, slack: float = 3.0
) -> ShapeCheck:
    """Timing grows no faster than ``slack`` x the size ratio (≈ linear)."""
    xs = [float(x) for x in result.xs]
    series = result.seconds[algorithm]
    points = [(x, s) for x, s in zip(xs, series) if s is not None and s > 1e-4]
    if len(points) < 2:
        return ShapeCheck(
            f"{algorithm} grows at most linearly", True, "too fast to measure"
        )
    (x0, s0), (x1, s1) = points[0], points[-1]
    passed = (s1 / s0) <= slack * (x1 / x0)
    return ShapeCheck(
        f"{algorithm} grows at most linearly in {result.x_label}",
        passed,
        f"time x{s1 / s0:.1f} for size x{x1 / x0:.1f}",
    )


def check_growth_superlinear(
    result: SweepResult, algorithm: str, *, factor: float = 2.0
) -> ShapeCheck:
    """Timing grows clearly faster than the size ratio (or gets skipped)."""
    xs = [float(x) for x in result.xs]
    series = result.seconds[algorithm]
    if series[-1] is None and any(s is not None for s in series):
        return ShapeCheck(
            f"{algorithm} grows superlinearly in {result.x_label}",
            True,
            "skipped before sweep end",
        )
    points = [(x, s) for x, s in zip(xs, series) if s is not None and s > 1e-4]
    if len(points) < 2:
        return ShapeCheck(
            f"{algorithm} grows superlinearly in {result.x_label}",
            False,
            "not enough measurable points",
        )
    (x0, s0), (x1, s1) = points[0], points[-1]
    passed = (s1 / s0) >= factor * (x1 / x0)
    return ShapeCheck(
        f"{algorithm} grows superlinearly in {result.x_label}",
        passed,
        f"time x{s1 / s0:.1f} for size x{x1 / x0:.1f}",
    )


def print_report(
    result: SweepResult,
    checks: list[ShapeCheck],
    *,
    title: str,
    notes: str = "",
) -> bool:
    """Print the series table and the shape checks; True when all pass."""
    print()
    print(format_sweep(result, title=title))
    if notes:
        print(notes)
    print()
    all_passed = True
    for check in checks:
        print(check)
        all_passed = all_passed and check.passed
    return all_passed
