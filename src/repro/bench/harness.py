"""Registered benchmark suites with statistics and environment fingerprints.

The repository's thirteen ``benchmarks/bench_*.py`` scripts each measure
one slice of the system (a paper figure's algorithms, the matcher, the
streaming path, prepared-plan reuse).  This module gives them one common
discipline, pyperf/ASV-style:

* a **registry** of named suites, each a list of :class:`BenchCase`
  closures (the built-in suites live in :mod:`repro.bench.suites` and
  cover what the thirteen scripts measure);
* a **statistical protocol** — setup untimed, ``warmup`` untimed calls,
  ``repeats`` timed calls through :class:`~repro.obs.timers.Stopwatch`,
  reported as min/median/p95/mean rather than a biased best-of;
* an **environment fingerprint** (python, platform, CPU count, git SHA)
  stamped into every result, so a baseline records *where* its numbers
  came from;
* a **schema-versioned document** (``BENCH_<suite>.json``) that
  :mod:`repro.bench.regression` can diff against a committed baseline.

Run a suite from the CLI (``repro-bench bench --suite quick``), from any
benchmark script (``python benchmarks/bench_streaming.py --harness``),
or programmatically via :func:`run_suite`.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from collections.abc import Callable, Iterable
from pathlib import Path

from repro.exceptions import EvaluationError
from repro.obs.metrics import percentile
from repro.obs.timers import Stopwatch

#: Version of the ``BENCH_<suite>.json`` document layout.  Bump on any
#: incompatible change; :func:`load_result` refuses newer documents.
SCHEMA_VERSION = 1

DEFAULT_WARMUP = 1
DEFAULT_REPEATS = 5


class BenchCase:
    """One registered measurement: an untimed setup and a timed body.

    ``factory`` runs once, untimed, and returns either the callable to
    time or a ``(callable, close)`` pair whose ``close`` releases
    resources after the timed repeats.
    """

    def __init__(
        self,
        name: str,
        factory: Callable[[], object],
        *,
        repeats: int | None = None,
        warmup: int | None = None,
    ) -> None:
        self.name = name
        self.factory = factory
        self.repeats = repeats
        self.warmup = warmup

    def run(self, *, warmup: int, repeats: int) -> dict:
        """Execute the case; per-case overrides beat the suite defaults."""
        warmup = self.warmup if self.warmup is not None else warmup
        repeats = self.repeats if self.repeats is not None else repeats
        built = self.factory()
        if isinstance(built, tuple):
            fn, close = built
        else:
            fn, close = built, None
        try:
            for _ in range(max(0, warmup)):
                fn()
            durations: list[float] = []
            for _ in range(max(1, repeats)):
                watch = Stopwatch()
                with watch:
                    fn()
                durations.append(watch.elapsed)
        finally:
            if close is not None:
                close()
        return {
            "name": self.name,
            "warmup": warmup,
            "repeats": len(durations),
            "seconds": {
                "min": min(durations),
                "median": percentile(durations, 50.0),
                "p95": percentile(durations, 95.0),
                "mean": sum(durations) / len(durations),
            },
        }


class Suite:
    """A named, ordered collection of benchmark cases."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.cases: list[BenchCase] = []

    def case(
        self,
        name: str,
        *,
        repeats: int | None = None,
        warmup: int | None = None,
    ) -> Callable[[Callable[[], object]], Callable[[], object]]:
        """Decorator registering ``factory`` as a case of this suite."""

        def register(factory: Callable[[], object]) -> Callable[[], object]:
            self.add(BenchCase(name, factory, repeats=repeats, warmup=warmup))
            return factory

        return register

    def add(self, case: BenchCase) -> None:
        if any(existing.name == case.name for existing in self.cases):
            raise EvaluationError(
                f"suite {self.name!r} already has a case {case.name!r}"
            )
        self.cases.append(case)


_SUITES: dict[str, Suite] = {}
_BUILTINS_LOADED = False


def register_suite(suite: Suite) -> Suite:
    """Add ``suite`` to the registry (name collisions are errors)."""
    if suite.name in _SUITES:
        raise EvaluationError(f"suite {suite.name!r} already registered")
    _SUITES[suite.name] = suite
    return suite


def _load_builtin_suites() -> None:
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        from repro.bench import suites  # noqa: F401 — registers on import


def get_suite(name: str) -> Suite:
    """Look up a registered suite (loading the built-ins on first use)."""
    _load_builtin_suites()
    try:
        return _SUITES[name]
    except KeyError:
        raise EvaluationError(
            f"unknown suite {name!r}; known: {', '.join(sorted(_SUITES))}"
        ) from None


def suite_names() -> tuple[str, ...]:
    """Every registered suite name, sorted."""
    _load_builtin_suites()
    return tuple(sorted(_SUITES))


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def fingerprint() -> dict:
    """Where a benchmark result came from: interpreter, machine, commit."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 0,
        "git_sha": _git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
    }


def run_suite(
    suite: Suite | str,
    *,
    warmup: int = DEFAULT_WARMUP,
    repeats: int = DEFAULT_REPEATS,
    only: Iterable[str] | None = None,
    verbose: bool = False,
) -> dict:
    """Run a suite and return the schema-versioned result document.

    ``only`` restricts the run to the named cases (unknown names raise).
    """
    if isinstance(suite, str):
        suite = get_suite(suite)
    cases = suite.cases
    if only is not None:
        wanted = list(only)
        by_name = {case.name: case for case in cases}
        missing = [name for name in wanted if name not in by_name]
        if missing:
            raise EvaluationError(
                f"suite {suite.name!r} has no case(s) {', '.join(missing)}"
            )
        cases = [by_name[name] for name in wanted]
    results = []
    for case in cases:
        measured = case.run(warmup=warmup, repeats=repeats)
        results.append(measured)
        if verbose:
            stats = measured["seconds"]
            print(
                f"  {case.name}: median {stats['median'] * 1e3:.3f} ms  "
                f"(min {stats['min'] * 1e3:.3f}, p95 {stats['p95'] * 1e3:.3f}, "
                f"n={measured['repeats']})"
            )
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": suite.name,
        "description": suite.description,
        "environment": fingerprint(),
        "cases": results,
    }


def format_result(result: dict) -> str:
    """A fixed-width table of one suite result."""
    cases = result["cases"]
    width = max([len(case["name"]) for case in cases] + [4])
    env = result.get("environment", {})
    lines = [
        f"suite {result['suite']}: {len(cases)} case(s)  "
        f"[python {env.get('python', '?')}, {env.get('cpu_count', '?')} cpus, "
        f"git {env.get('git_sha', '?')}]"
    ]
    header = (
        f"{'case':<{width}}{'n':>4}{'min ms':>12}{'median ms':>12}{'p95 ms':>12}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for case in cases:
        stats = case["seconds"]
        lines.append(
            f"{case['name']:<{width}}{case['repeats']:>4}"
            f"{stats['min'] * 1e3:>12.3f}{stats['median'] * 1e3:>12.3f}"
            f"{stats['p95'] * 1e3:>12.3f}"
        )
    return "\n".join(lines)


def baseline_path(suite_name: str, root: str | Path = ".") -> Path:
    """Where the committed baseline of one suite lives."""
    return Path(root) / f"BENCH_{suite_name.replace('-', '_')}.json"


def save_result(result: dict, path: str | Path) -> None:
    """Write a result document as indented JSON."""
    Path(path).write_text(json.dumps(result, indent=2) + "\n")


def load_result(path: str | Path) -> dict:
    """Read a result document, validating its schema version."""
    data = json.loads(Path(path).read_text())
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise EvaluationError(
            f"{path}: benchmark schema version {version!r} is not the "
            f"supported {SCHEMA_VERSION} (regenerate with "
            "'repro-bench bench --suite <name> --update-baseline')"
        )
    return data


def main(argv: list[str] | None = None) -> int:
    """The ``repro-bench bench`` driver (also reachable per script)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-bench bench",
        description="Run a registered benchmark suite with warmup, repeats, "
        "and an environment fingerprint.",
    )
    parser.add_argument("--suite", default=None, help="registered suite name")
    parser.add_argument("--list", action="store_true",
                        help="list registered suites and their cases")
    parser.add_argument("--warmup", type=int, default=DEFAULT_WARMUP)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--case", action="append", default=None,
                        metavar="NAME", help="run only this case (repeatable)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the result document to PATH")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the result to the committed baseline location "
        "(BENCH_<suite>.json in the current directory)",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in suite_names():
            suite = get_suite(name)
            print(f"{name}: {suite.description}")
            for case in suite.cases:
                print(f"  {case.name}")
        return 0
    if args.suite is None:
        parser.error("--suite is required (or use --list)")
    try:
        result = run_suite(
            args.suite,
            warmup=args.warmup,
            repeats=args.repeats,
            only=args.case,
            verbose=True,
        )
    except EvaluationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_result(result))
    if args.json:
        save_result(result, args.json)
        print(f"wrote {args.json}")
    if args.update_baseline:
        path = baseline_path(args.suite)
        save_result(result, path)
        print(f"wrote baseline {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
