"""Timed parameter sweeps with per-algorithm budgets.

:func:`run_sweep` times each registered algorithm at each point of a
parameter grid.  An algorithm whose last run exceeded the timeout is
*skipped* at all larger sizes — mirroring how the paper handled its
exponential algorithms ("a completion time of more than 10 days for 4
auctions") without making the harness take ten days.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro.bench.algorithms import BenchContext, get_algorithm
from repro.obs.timers import time_call


class SweepResult:
    """Timings of one sweep: ``seconds[algorithm][i]`` aligns with ``xs``.

    A cell holds seconds, or ``None`` when the run was skipped because the
    algorithm blew its budget at a smaller size.
    """

    def __init__(
        self,
        x_label: str,
        xs: Sequence[object],
        seconds: dict[str, list[float | None]],
    ) -> None:
        self.x_label = x_label
        self.xs = list(xs)
        self.seconds = seconds

    def series(self, algorithm: str) -> list[tuple[object, float | None]]:
        """The (x, seconds) series of one algorithm."""
        return list(zip(self.xs, self.seconds[algorithm]))

    def last_defined(self, algorithm: str) -> float | None:
        """The largest-size timing that actually ran, if any."""
        for value in reversed(self.seconds[algorithm]):
            if value is not None:
                return value
        return None

    def to_dict(self) -> dict:
        """A JSON-ready form of the sweep (for plotting outside Python)."""
        return {
            "x_label": self.x_label,
            "xs": list(self.xs),
            "seconds": {name: list(series) for name, series in self.seconds.items()},
        }

    def save_json(self, path) -> None:
        """Write :meth:`to_dict` to ``path`` as indented JSON."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def from_dict(cls, data: dict) -> "SweepResult":
        """Rebuild a sweep result saved by :meth:`save_json`."""
        return cls(data["x_label"], data["xs"], dict(data["seconds"]))


def time_once(fn: Callable[[], object]) -> float:
    """Wall-clock seconds of a single call."""
    _, seconds = time_call(fn)
    return seconds


def time_best(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds (paper: averages of runs; we
    take the minimum, the standard low-noise estimator)."""
    return min(time_once(fn) for _ in range(max(1, repeats)))


def run_sweep(
    x_label: str,
    xs: Sequence[object],
    make_context: Callable[[object], BenchContext],
    algorithms: Iterable[str],
    *,
    timeout: float = 30.0,
    repeats: int = 1,
    verbose: bool = True,
) -> SweepResult:
    """Time every algorithm at every grid point.

    Parameters
    ----------
    x_label / xs:
        The swept parameter (e.g. ``#tuples``) and its values, ascending.
    make_context:
        Builds the :class:`BenchContext` for one grid point.  Called once
        per point; the context is closed afterwards.
    algorithms:
        Registry names (see :mod:`repro.bench.algorithms`).
    timeout:
        Once an algorithm's run exceeds this many seconds, it is skipped at
        every larger grid point (recorded as ``None``).
    repeats:
        Timing repetitions per cell (best is kept).
    """
    names = list(algorithms)
    seconds: dict[str, list[float | None]] = {name: [] for name in names}
    exhausted: set[str] = set()
    for x in xs:
        context = make_context(x)
        try:
            for name in names:
                if name in exhausted:
                    seconds[name].append(None)
                    continue
                runner = get_algorithm(name)
                try:
                    elapsed = time_best(lambda: runner(context), repeats)
                except Exception as error:  # budget guards raise EvaluationError
                    if verbose:
                        print(f"  {x_label}={x} {name}: skipped ({error})")
                    exhausted.add(name)
                    seconds[name].append(None)
                    continue
                seconds[name].append(elapsed)
                if verbose:
                    print(f"  {x_label}={x} {name}: {elapsed:.4f}s")
                if elapsed > timeout:
                    exhausted.add(name)
        finally:
            context.close()
    return SweepResult(x_label, xs, seconds)
