"""Timed parameter sweeps with per-algorithm budgets.

:func:`run_sweep` times each registered algorithm at each point of a
parameter grid.  An algorithm whose last run exceeded the timeout is
*skipped* at all larger sizes — mirroring how the paper handled its
exponential algorithms ("a completion time of more than 10 days for 4
auctions") without making the harness take ten days.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import NamedTuple

from repro.bench.algorithms import BenchContext, get_algorithm
from repro.obs.metrics import percentile
from repro.obs.timers import Stopwatch, time_call


class TimingStats(NamedTuple):
    """Statistics over the timed repetitions of one benchmark cell.

    The *median* is the headline number — robust to scheduler noise in
    both directions, unlike the best-of minimum (optimistic bias: it
    reports the one run that dodged every interrupt) or the mean
    (pessimistic bias: one descheduled run drags it).
    """

    min: float
    median: float
    p95: float

    def to_dict(self) -> dict:
        return {"min": self.min, "median": self.median, "p95": self.p95}


class SweepResult:
    """Timings of one sweep: ``seconds[algorithm][i]`` aligns with ``xs``.

    A cell holds the *median* seconds over the cell's timed repeats, or
    ``None`` when the run was skipped because the algorithm blew its
    budget at a smaller size.  When the sweep timed more than one repeat,
    ``stats[algorithm][i]`` keeps the full ``{min, median, p95}`` dict.
    """

    def __init__(
        self,
        x_label: str,
        xs: Sequence[object],
        seconds: dict[str, list[float | None]],
        stats: dict[str, list[dict | None]] | None = None,
    ) -> None:
        self.x_label = x_label
        self.xs = list(xs)
        self.seconds = seconds
        self.stats = stats

    def series(self, algorithm: str) -> list[tuple[object, float | None]]:
        """The (x, median seconds) series of one algorithm."""
        return list(zip(self.xs, self.seconds[algorithm]))

    def last_defined(self, algorithm: str) -> float | None:
        """The largest-size timing that actually ran, if any."""
        for value in reversed(self.seconds[algorithm]):
            if value is not None:
                return value
        return None

    def to_dict(self) -> dict:
        """A JSON-ready form of the sweep (for plotting outside Python)."""
        data = {
            "x_label": self.x_label,
            "xs": list(self.xs),
            "seconds": {name: list(series) for name, series in self.seconds.items()},
        }
        if self.stats is not None:
            data["stats"] = {
                name: list(series) for name, series in self.stats.items()
            }
        return data

    def save_json(self, path) -> None:
        """Write :meth:`to_dict` to ``path`` as indented JSON."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def from_dict(cls, data: dict) -> "SweepResult":
        """Rebuild a sweep result saved by :meth:`save_json`."""
        return cls(
            data["x_label"],
            data["xs"],
            dict(data["seconds"]),
            stats=dict(data["stats"]) if "stats" in data else None,
        )


def time_once(fn: Callable[[], object]) -> float:
    """Wall-clock seconds of a single call."""
    _, seconds = time_call(fn)
    return seconds


def time_stats(
    fn: Callable[[], object], repeats: int, *, warmup: int = 1
) -> TimingStats:
    """Warmup then time ``repeats`` calls; ``(min, median, p95)`` seconds.

    Replaces the old best-of estimator: ``warmup`` untimed calls absorb
    cold caches and lazy imports, then each timed call runs under one
    :class:`~repro.obs.timers.Stopwatch` and the distribution is
    summarized instead of cherry-picking the fastest run.
    """
    for _ in range(max(0, warmup)):
        fn()
    durations: list[float] = []
    for _ in range(max(1, repeats)):
        watch = Stopwatch()
        with watch:
            fn()
        durations.append(watch.elapsed)
    return TimingStats(
        min(durations),
        percentile(durations, 50.0),
        percentile(durations, 95.0),
    )


def run_sweep(
    x_label: str,
    xs: Sequence[object],
    make_context: Callable[[object], BenchContext],
    algorithms: Iterable[str],
    *,
    timeout: float = 30.0,
    repeats: int = 1,
    warmup: int = 0,
    verbose: bool = True,
) -> SweepResult:
    """Time every algorithm at every grid point.

    Parameters
    ----------
    x_label / xs:
        The swept parameter (e.g. ``#tuples``) and its values, ascending.
    make_context:
        Builds the :class:`BenchContext` for one grid point.  Called once
        per point; the context is closed afterwards.
    algorithms:
        Registry names (see :mod:`repro.bench.algorithms`).
    timeout:
        Once an algorithm's run exceeds this many seconds, it is skipped at
        every larger grid point (recorded as ``None``).
    repeats:
        Timing repetitions per cell; the recorded value is the *median*.
    warmup:
        Untimed calls before the timed repeats.  Defaults to 0 because the
        figure sweeps include exponential algorithms whose single run is
        already the budget; the suite harness
        (:mod:`repro.bench.harness`) always warms up.
    """
    names = list(algorithms)
    seconds: dict[str, list[float | None]] = {name: [] for name in names}
    stats: dict[str, list[dict | None]] = {name: [] for name in names}
    exhausted: set[str] = set()
    for x in xs:
        context = make_context(x)
        try:
            for name in names:
                if name in exhausted:
                    seconds[name].append(None)
                    stats[name].append(None)
                    continue
                runner = get_algorithm(name)
                try:
                    timed = time_stats(
                        lambda: runner(context), repeats, warmup=warmup
                    )
                except Exception as error:  # budget guards raise EvaluationError
                    if verbose:
                        print(f"  {x_label}={x} {name}: skipped ({error})")
                    exhausted.add(name)
                    seconds[name].append(None)
                    stats[name].append(None)
                    continue
                seconds[name].append(timed.median)
                stats[name].append(timed.to_dict())
                if verbose:
                    print(f"  {x_label}={x} {name}: {timed.median:.4f}s")
                if timed.median > timeout:
                    exhausted.add(name)
        finally:
            context.close()
    return SweepResult(x_label, xs, seconds, stats=stats)
