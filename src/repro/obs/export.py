"""Prometheus text exposition over the metrics registry.

:func:`render_prometheus` renders a :class:`~repro.obs.metrics.MetricsRegistry`
in the Prometheus text format (version 0.0.4) — the lingua franca any
scraping service tier understands — and :class:`MetricsServer` wraps it
in a stdlib :mod:`http.server` scrape endpoint for ``repro stats
--serve``.  Zero dependencies, like the rest of :mod:`repro.obs`.

Naming conventions (documented in ``docs/observability.md``):

* every metric is prefixed ``repro_`` and sanitized to the Prometheus
  grammar — characters outside ``[a-zA-Z0-9_:]`` (the registry uses
  dotted names) become ``_``, so ``plan.cache.hit`` exports as
  ``repro_plan_cache_hit_total``;
* counters gain the conventional ``_total`` suffix and ``# TYPE ...
  counter``;
* gauges export under their sanitized name with ``# TYPE ... gauge``;
* histograms export as Prometheus *summaries*: ``{quantile="0.5|0.95|
  0.99"}`` sample lines from the reservoir estimate, plus the exact
  ``_sum`` and ``_count`` series (quantile lines are omitted while the
  histogram is empty — NaN quantiles scrape poorly).
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import MetricsExportError
from repro.obs import metrics as metrics_mod

#: Prefix applied to every exported metric name.
PREFIX = "repro_"

#: Content type of the text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_FIRST = re.compile(r"^[^a-zA-Z_:]")


def sanitize(name: str, *, prefix: str = PREFIX) -> str:
    """The registry metric name as a valid Prometheus metric name."""
    cleaned = _INVALID_CHARS.sub("_", name)
    cleaned = _INVALID_FIRST.sub("_", cleaned)
    return prefix + cleaned


def _format_value(value: float) -> str:
    """A Prometheus-parseable sample value (repr keeps full precision)."""
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(
    registry: metrics_mod.MetricsRegistry | None = None,
    *,
    prefix: str = PREFIX,
) -> str:
    """The registry in the Prometheus text exposition format.

    Defaults to the effective default registry
    (:func:`repro.obs.metrics.get_registry`).  Families are emitted in
    sorted name order, each with its ``# HELP``/``# TYPE`` header; the
    output always ends with a newline (scrapers require it).
    """
    if registry is None:
        registry = metrics_mod.get_registry()
    lines: list[str] = []
    for name in sorted(registry._counters):
        counter = registry._counters[name]
        exported = sanitize(name, prefix=prefix) + "_total"
        lines.append(f"# HELP {exported} repro counter {name}")
        lines.append(f"# TYPE {exported} counter")
        lines.append(f"{exported} {_format_value(counter.value)}")
    for name in sorted(registry._gauges):
        gauge = registry._gauges[name]
        exported = sanitize(name, prefix=prefix)
        lines.append(f"# HELP {exported} repro gauge {name}")
        lines.append(f"# TYPE {exported} gauge")
        lines.append(f"{exported} {_format_value(gauge.value)}")
    for name in sorted(registry._histograms):
        histogram = registry._histograms[name]
        exported = sanitize(name, prefix=prefix)
        lines.append(f"# HELP {exported} repro histogram {name}")
        lines.append(f"# TYPE {exported} summary")
        if histogram.count:
            for q in (0.5, 0.95, 0.99):
                value = histogram.percentile(q * 100.0)
                lines.append(
                    f'{exported}{{quantile="{q}"}} {_format_value(value)}'
                )
        lines.append(f"{exported}_sum {_format_value(histogram.total)}")
        lines.append(f"{exported}_count {histogram.count}")
    return "\n".join(lines) + "\n"


class _ScrapeHandler(BaseHTTPRequestHandler):
    """GET /metrics (or /) returns the current exposition; 404 otherwise."""

    server_version = "repro-stats/1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path.split("?", 1)[0] not in ("/", "/metrics"):
            self.send_error(404, "scrape /metrics")
            return
        body = render_prometheus(self.server.registry).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args: object) -> None:
        # Scrapes every few seconds would otherwise spam stderr.
        pass


class MetricsServer:
    """A background Prometheus scrape endpoint over one registry.

    Binds immediately (``port=0`` picks an ephemeral port, exposed as
    :attr:`port` — tests and the CLI print it); :meth:`start` serves from
    a daemon thread, :meth:`stop` shuts down and joins.  Usable as a
    context manager.

    Raises
    ------
    MetricsExportError
        When the requested address cannot be bound (port already in use,
        privileged port, unresolvable host) — the typed form of the
        underlying :class:`OSError`, so ``repro-bench stats --serve``
        reports one clean line instead of a traceback.
    """

    def __init__(
        self,
        registry: metrics_mod.MetricsRegistry | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        try:
            self._server = ThreadingHTTPServer((host, port), _ScrapeHandler)
        except OSError as error:
            raise MetricsExportError(
                f"cannot bind metrics endpoint on {host}:{port}: {error}",
                host=host,
                port=port,
            ) from error
        self._server.registry = (
            registry if registry is not None else metrics_mod.get_registry()
        )
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound TCP port (the ephemeral one when created with 0)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """The scrape URL."""
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        """Serve scrapes from a daemon thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def serve_forever(self) -> None:
        """Serve scrapes on the calling thread until interrupted."""
        try:
            self._server.serve_forever()
        finally:
            self._server.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
