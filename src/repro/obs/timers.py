"""Wall-clock timing utilities shared by the CLI, benchmarks, and EXPLAIN.

One code path for every number the library reports: the CLI's
``--repeat`` summary, the benchmark harness sweeps, and ``EXPLAIN
ANALYZE`` all measure through :class:`Stopwatch` / :func:`time_call`,
so their timings are directly comparable.
"""

from __future__ import annotations

import time
from collections.abc import Callable


class Stopwatch:
    """An accumulating wall-clock timer.

    Usable as a context manager (each ``with`` adds to ``elapsed``) or via
    explicit :meth:`start`/:meth:`stop`.
    """

    __slots__ = ("elapsed", "_started")

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started: float | None = None

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._started is not None

    def start(self) -> "Stopwatch":
        """Begin (or resume) timing."""
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop timing; returns the total accumulated seconds."""
        if self._started is not None:
            self.elapsed += time.perf_counter() - self._started
            self._started = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulator and stop."""
        self.elapsed = 0.0
        self._started = None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        return f"Stopwatch({self.elapsed:.6f}s)"


def time_call(fn: Callable[..., object], *args, **kwargs) -> tuple[object, float]:
    """Call ``fn`` and return ``(result, wall-clock seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
