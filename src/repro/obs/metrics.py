"""A process-wide registry of counters, gauges, and histograms.

The pipeline reports *what happened* through metrics and *how long it
took* through spans (:mod:`repro.obs.trace`).  Metrics are always on:
recording one is a couple of dictionary operations per *stage* (never per
tuple), so the uninstrumented hot loops stay untouched.

Registries chain: a :class:`MetricsRegistry` built with a ``parent``
forwards every recording to it, so the per-engine registry on
:class:`~repro.core.execute.ExecutionContext` can be reset independently
(``invalidate()``/``close()``) while the process-wide default registry
keeps the cumulative totals that ``EXPLAIN ANALYZE`` diffs.

Two facilities make metrics survive concurrency and process boundaries:

* :func:`use_registry` swaps the *default* registry for the current
  context only (a :mod:`contextvars` override), so a pool shard — thread
  or process — can capture exactly its own recordings into a fresh
  registry and ship that delta back;
* :meth:`MetricsRegistry.merge` folds such a shipped registry into
  another one (propagating up the parent chain), which is how the
  parallel lane re-integrates per-shard metrics into the engine's
  registry.

The metric catalog (names and meanings) is in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import math
import random
from collections.abc import Sequence
from contextlib import contextmanager
from contextvars import ContextVar


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) by linear interpolation.

    ``values`` need not be sorted; raises ``ValueError`` when empty.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observed values: count, sum, min, max, mean,
    and reservoir-estimated p50/p95/p99.

    The percentiles come from a bounded reservoir (Vitter's Algorithm R,
    ``RESERVOIR_SIZE`` values, stdlib ``random`` with a fixed per-instance
    seed so summaries are reproducible): exact until the reservoir fills,
    a uniform sample of the stream after.  Memory stays O(1) per
    histogram regardless of observation count.
    """

    RESERVOIR_SIZE = 512

    __slots__ = ("count", "total", "min", "max", "_reservoir", "_rng")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir: list[float] = []
        self._rng = random.Random(0x0B5)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self.RESERVOIR_SIZE:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.RESERVOIR_SIZE:
                self._reservoir[slot] = value

    def percentile(self, q: float) -> float:
        """The reservoir-estimated ``q``-th percentile (0-100)."""
        return percentile(self._reservoir, q)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        ``count``/``sum``/``min``/``max`` combine exactly.  The reservoir
        absorbs the other side's sampled values through the same
        Algorithm-R slot rule, so the merged percentiles remain a uniform
        estimate of the combined stream (exact while both reservoirs
        together fit; an approximation after, as ever).
        """
        if other.count == 0:
            return
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for value in other._reservoir:
            self.count += 1
            if len(self._reservoir) < self.RESERVOIR_SIZE:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.RESERVOIR_SIZE:
                    self._reservoir[slot] = value
        # Observations the other reservoir sampled away still count.
        self.count += other.count - len(other._reservoir)

    def summary(self) -> dict:
        """A JSON-ready summary (empty histogram: all-zero, no min/max)."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


class MetricsRegistry:
    """Named metrics, created on first use, snapshottable and resettable."""

    def __init__(self, parent: "MetricsRegistry | None" = None) -> None:
        self.parent = parent
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- recording ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The named counter, created at zero on first use."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created at zero on first use."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str) -> Histogram:
        """The named histogram, created empty on first use."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        return histogram

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment a counter here and in every ancestor registry."""
        self.counter(name).inc(amount)
        if self.parent is not None:
            self.parent.inc(name, amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge here and in every ancestor registry."""
        self.gauge(name).set(value)
        if self.parent is not None:
            self.parent.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        """Record a histogram observation here and in every ancestor."""
        self.histogram(name).observe(value)
        if self.parent is not None:
            self.parent.observe(name, value)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's state into this one (and its ancestors).

        Counters add, gauges take the other side's last write, histograms
        merge observation-by-observation (see :meth:`Histogram.merge`).
        This is how a pool shard's captured delta re-enters the engine
        registry: the shard recorded into a fresh registry under
        :func:`use_registry`, shipped it back, and the parent merges it
        here — so the chained process-wide totals stay complete even when
        the recording happened in another process.
        """
        for name, counter in other._counters.items():
            if counter.value:
                self.inc(name, counter.value)
        for name, gauge in other._gauges.items():
            self.set_gauge(name, gauge.value)
        for name, histogram in other._histograms.items():
            self._merge_histogram(name, histogram)

    def _merge_histogram(self, name: str, histogram: Histogram) -> None:
        self.histogram(name).merge(histogram)
        if self.parent is not None:
            self.parent._merge_histogram(name, histogram)

    # -- reading -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Every metric's current value: counters and gauges as numbers,
        histograms as summary dicts, sorted by name."""
        out: dict[str, object] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            out[name] = histogram.summary()
        return dict(sorted(out.items()))

    def reset(self) -> None:
        """Drop every metric (they recreate at zero on next use)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def render_text(self) -> str:
        """One ``name value`` line per metric (histograms as key=value)."""
        lines = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                inner = " ".join(f"{k}={v:g}" for k, v in value.items())
                lines.append(f"{name} {inner}")
            else:
                lines.append(f"{name} {value:g}")
        return "\n".join(lines)

    def render_json(self, *, indent: int | None = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent)


def delta(before: dict, after: dict) -> dict:
    """The metrics that changed between two snapshots.

    Counters and gauges diff numerically; histograms diff their ``count``
    and ``sum`` fields and carry the ``after`` percentiles (p50/p95/p99
    are not differences — they describe the distribution as of the second
    snapshot).  Metrics absent from ``before`` count from zero; unchanged
    metrics are omitted.
    """
    changed: dict[str, object] = {}
    for name, value in after.items():
        prior = before.get(name)
        if isinstance(value, dict):
            prior = prior or {"count": 0, "sum": 0.0}
            if value.get("count", 0) != prior.get("count", 0):
                entry = {
                    "count": value.get("count", 0) - prior.get("count", 0),
                    "sum": value.get("sum", 0.0) - prior.get("sum", 0.0),
                }
                for key in ("p50", "p95", "p99"):
                    if key in value:
                        entry[key] = value[key]
                changed[name] = entry
        else:
            diff = value - (prior or 0)
            if diff != 0:
                changed[name] = diff
    return changed


#: The process-wide default registry; stage instrumentation without an
#: execution context (kernels, sampling, streaming, SQLite) records here.
_DEFAULT = MetricsRegistry()

#: A context-local override of the default registry.  While set (see
#: :func:`use_registry`), every module-level recording in this context —
#: and only this context — lands on the override instead, which is how a
#: pool shard captures its own delta without interleaving with sibling
#: shards on other threads.
_ACTIVE: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_metrics_registry", default=None
)


def get_registry() -> MetricsRegistry:
    """The effective default registry of this context.

    The context-local override installed by :func:`use_registry` when one
    is active, else the process-wide default.
    """
    active = _ACTIVE.get()
    return active if active is not None else _DEFAULT


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry (tests); returns the
    previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Route this context's module-level recordings to ``registry``.

    Context-local (a thread or process pool worker installs its own
    without touching siblings); restores the previous state on exit.
    """
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)


def inc(name: str, amount: int = 1) -> None:
    """Increment a counter on the effective default registry."""
    get_registry().inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the effective default registry."""
    get_registry().set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the effective default registry."""
    get_registry().observe(name, value)


def snapshot() -> dict:
    """Snapshot the effective default registry."""
    return get_registry().snapshot()
