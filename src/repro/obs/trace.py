"""Nestable tracing spans with pluggable sinks, safe under concurrency.

The answering pipeline is instrumented with ``with span("plan.select_lane"):``
blocks.  When no sink is installed — the default — :func:`span` returns a
shared no-op context manager, so instrumentation costs one context-variable
read per block and nothing else; the prepared-reuse benchmark guards this
(``benchmarks/bench_prepared_reuse.py``) and the ``obs_overhead`` suite
measures the sink-installed cost.

Install a sink to start recording::

    sink = InMemorySink()
    with use_sink(sink):
        engine.answer(...)
    sink.roots[0].to_dict()   # the span tree of the answer() call

Spans nest: a span entered while another is open becomes its child, and
only *root* spans are handed to the sink (as complete trees).  The span
catalog is documented in ``docs/observability.md``.

**Trace context is carried in** :mod:`contextvars`: both the active sink
and the open-span stack are context-local, so two threads (or two asyncio
tasks) answering queries at the same time each build their own span tree
and record to their own sink — concurrent executions never interleave
into one tree.  :func:`use_sink` installs a sink for the current context
only; :func:`install_sink` sets a process-wide *default* sink that any
context without its own sink falls back to.  A thread starts with a fresh
context, so a sink installed with :func:`use_sink` does **not** leak into
threads spawned inside the ``with`` block — callers that fan out (e.g.
``answer_many(parallel=True)``) capture :func:`current_sink` and re-enter
:func:`use_sink` on the worker side; the parallel lane ships whole span
subtrees back across the pool instead (see :func:`attach`).

Sinks are deliberately minimal: anything with a ``handle(span)`` method
works.  :class:`InMemorySink` keeps the last N root spans in a ring
buffer; :class:`JSONLSink` appends one JSON object per root span to a
file.  Both are safe to share between threads.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path


class Span:
    """One timed, attributed, nestable region of work.

    Created by :func:`span` (do not instantiate directly); duration runs
    from ``__enter__`` to ``__exit__`` on :func:`time.perf_counter`, and
    ``start_ts`` additionally records the wall-clock epoch time at entry
    so spans from different processes or runs can be correlated.
    """

    __slots__ = ("name", "attributes", "start", "end", "start_ts",
                 "children", "_token")

    def __init__(self, name: str, attributes: dict) -> None:
        self.name = name
        self.attributes = attributes
        self.start: float | None = None
        self.end: float | None = None
        #: Wall-clock epoch seconds at ``__enter__`` (``time.time()``),
        #: for cross-process/cross-run correlation; ``seconds`` stays on
        #: the monotonic clock.
        self.start_ts: float | None = None
        self.children: list[Span] = []
        self._token = None

    @property
    def seconds(self) -> float:
        """Monotonic duration; 0.0 while the span is still open."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """A JSON-ready form of the span tree rooted here."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "start_ts": self.start_ts,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def __enter__(self) -> "Span":
        stack = _STACK.get()
        self._token = _STACK.set(stack + (self,))
        self.start_ts = time.time()
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end = time.perf_counter()
        if self._token is not None:
            _STACK.reset(self._token)
            self._token = None
        stack = _STACK.get()
        if stack:
            stack[-1].children.append(self)
        else:
            sink = current_sink()
            if sink is not None:
                sink.handle(self)

    def __getstate__(self) -> dict:
        # Pickled spans (shard subtrees crossing a pool boundary) travel
        # closed: the context token is meaningless in another process.
        return {
            "name": self.name,
            "attributes": self.attributes,
            "start": self.start,
            "end": self.end,
            "start_ts": self.start_ts,
            "children": self.children,
        }

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.attributes = state["attributes"]
        self.start = state["start"]
        self.end = state["end"]
        self.start_ts = state["start_ts"]
        self.children = state["children"]
        self._token = None

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.seconds * 1e3:.3f} ms)"


class _NoOpSpan:
    """The shared do-nothing span returned while no sink is installed."""

    __slots__ = ()

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def set(self, key: str, value: object) -> None:
        pass


_NOOP = _NoOpSpan()

#: Sentinel distinguishing "no context-local sink set" (fall back to the
#: process default) from an explicit ``use_sink(None)`` (trace nothing).
_UNSET = object()

#: The context-local sink (set by :func:`use_sink`); falls back to the
#: process-wide default installed by :func:`install_sink`.
_SINK: ContextVar[object] = ContextVar("repro_trace_sink", default=_UNSET)

#: The open-span stack of the current context, as an immutable tuple so a
#: copied context never shares (or mutates) another context's stack.
_STACK: ContextVar[tuple[Span, ...]] = ContextVar(
    "repro_trace_stack", default=()
)

#: The process-wide default sink (:func:`install_sink`), used by contexts
#: that have not set their own.
_PROCESS_SINK = None


def span(name: str, **attributes: object):
    """A context manager timing one named region.

    With no sink installed this is the shared no-op object; otherwise a
    fresh :class:`Span` that nests under any currently open span of the
    same context.
    """
    if current_sink() is None:
        return _NOOP
    return Span(name, attributes)


def current_span() -> Span | None:
    """The innermost open span of this context, or ``None``."""
    stack = _STACK.get()
    return stack[-1] if stack else None


def add_attribute(key: str, value: object) -> None:
    """Set an attribute on the innermost open span (no-op without one)."""
    stack = _STACK.get()
    if stack:
        stack[-1].set(key, value)


def attach(root: Span) -> None:
    """Adopt a completed span tree into the current trace context.

    The re-parenting half of cross-worker stitching: a pool worker records
    its shard subtree into its own context and ships it back; the parent
    calls :func:`attach` inside its open lane span, making the shard tree
    a child of that span (or a root handed to the sink when no span is
    open).  No-op when the tree is ``None``.
    """
    if root is None:
        return
    stack = _STACK.get()
    if stack:
        stack[-1].children.append(root)
        return
    sink = current_sink()
    if sink is not None:
        sink.handle(root)


def current_sink():
    """The effective sink of this context (context-local, else the
    process-wide default), or ``None``."""
    sink = _SINK.get()
    if sink is _UNSET:
        return _PROCESS_SINK
    return sink


def install_sink(sink) -> None:
    """Install ``sink`` as the process-wide *default* span sink.

    Contexts that set their own sink with :func:`use_sink` are
    unaffected; everything else records here.
    """
    global _PROCESS_SINK
    _PROCESS_SINK = sink


def uninstall_sink() -> None:
    """Remove the process-wide default sink."""
    global _PROCESS_SINK
    _PROCESS_SINK = None


@contextmanager
def capture_into(sink):
    """Record into ``sink`` from a *detached* trace context.

    Like :func:`use_sink`, but also resets the open-span stack to empty
    for the duration, so the first span entered inside the block is a
    root handed to ``sink`` — regardless of what the surrounding (or, in
    a fork-started pool worker, the *inherited*) context had open.  Pool
    shards record their subtree this way: a forked worker inherits the
    parent's contextvars, including the parent's open ``parallel.map``
    stack, and without the reset the shard span would silently attach to
    a dead copy of the parent tree instead of reaching the local sink.
    """
    sink_token = _SINK.set(sink)
    stack_token = _STACK.set(())
    try:
        yield sink
    finally:
        _STACK.reset(stack_token)
        _SINK.reset(sink_token)


@contextmanager
def use_sink(sink):
    """Install ``sink`` for the current context, restoring the previous
    state on exit.

    ``use_sink(None)`` explicitly disables tracing for the block even
    when a process-wide default sink is installed.
    """
    token = _SINK.set(sink)
    try:
        yield sink
    finally:
        _SINK.reset(token)


class InMemorySink:
    """A ring buffer of the last ``capacity`` completed root span trees.

    Safe to share between threads: the deque append is atomic, and
    :attr:`roots` snapshots the buffer.
    """

    def __init__(self, capacity: int = 256) -> None:
        self._roots: deque[Span] = deque(maxlen=capacity)

    @property
    def roots(self) -> list[Span]:
        """The buffered root spans, oldest first."""
        return list(self._roots)

    def handle(self, root: Span) -> None:
        self._roots.append(root)

    def clear(self) -> None:
        """Drop every buffered span."""
        self._roots.clear()

    def spans(self) -> Iterator[Span]:
        """Every buffered span (roots and descendants), depth-first."""
        for root in self._roots:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """All buffered spans with this name."""
        return [s for s in self.spans() if s.name == name]

    def __len__(self) -> int:
        return len(self._roots)


class JSONLSink:
    """Appends one JSON object per completed root span tree to a file.

    A lock serializes writes, so one sink can collect roots from several
    threads without interleaving lines.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = self.path.open("a")
        self._lock = threading.Lock()

    def handle(self, root: Span) -> None:
        line = json.dumps(root.to_dict()) + "\n"
        with self._lock:
            self._handle.write(line)

    def close(self) -> None:
        """Flush and close the file."""
        self._handle.close()

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
