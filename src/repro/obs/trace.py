"""Nestable tracing spans with pluggable sinks.

The answering pipeline is instrumented with ``with span("plan.select_lane"):``
blocks.  When no sink is installed — the default — :func:`span` returns a
shared no-op context manager, so instrumentation costs one module-global
check per block and nothing else; the prepared-reuse benchmark guards this
(``benchmarks/bench_prepared_reuse.py``).

Install a sink to start recording::

    sink = InMemorySink()
    with use_sink(sink):
        engine.answer(...)
    sink.roots[0].to_dict()   # the span tree of the answer() call

Spans nest: a span entered while another is open becomes its child, and
only *root* spans are handed to the sink (as complete trees).  The span
catalog is documented in ``docs/observability.md``.

Sinks are deliberately minimal: anything with a ``handle(span)`` method
works.  :class:`InMemorySink` keeps the last N root spans in a ring
buffer; :class:`JSONLSink` appends one JSON object per root span to a
file.  The module keeps a single process-wide sink slot (the library is
synchronous; see the docs for the threading caveat).
"""

from __future__ import annotations

import json
import time
from collections import deque
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path


class Span:
    """One timed, attributed, nestable region of work.

    Created by :func:`span` (do not instantiate directly); timing runs from
    ``__enter__`` to ``__exit__`` on :func:`time.perf_counter`.
    """

    __slots__ = ("name", "attributes", "start", "end", "children")

    def __init__(self, name: str, attributes: dict) -> None:
        self.name = name
        self.attributes = attributes
        self.start: float | None = None
        self.end: float | None = None
        self.children: list[Span] = []

    @property
    def seconds(self) -> float:
        """Wall-clock duration; 0.0 while the span is still open."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """A JSON-ready form of the span tree rooted here."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        _STACK.append(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end = time.perf_counter()
        if _STACK and _STACK[-1] is self:
            _STACK.pop()
        if _STACK:
            _STACK[-1].children.append(self)
        elif _SINK is not None:
            _SINK.handle(self)

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.seconds * 1e3:.3f} ms)"


class _NoOpSpan:
    """The shared do-nothing span returned while no sink is installed."""

    __slots__ = ()

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def set(self, key: str, value: object) -> None:
        pass


_NOOP = _NoOpSpan()
_SINK = None
_STACK: list[Span] = []


def span(name: str, **attributes: object):
    """A context manager timing one named region.

    With no sink installed this is the shared no-op object; otherwise a
    fresh :class:`Span` that nests under any currently open span.
    """
    if _SINK is None:
        return _NOOP
    return Span(name, attributes)


def add_attribute(key: str, value: object) -> None:
    """Set an attribute on the innermost open span (no-op without one)."""
    if _STACK:
        _STACK[-1].set(key, value)


def current_sink():
    """The installed sink, or ``None``."""
    return _SINK


def install_sink(sink) -> None:
    """Install ``sink`` as the process-wide span sink."""
    global _SINK
    _SINK = sink


def uninstall_sink() -> None:
    """Remove the sink; :func:`span` reverts to the no-op fast path."""
    global _SINK
    _SINK = None


@contextmanager
def use_sink(sink):
    """Temporarily install ``sink``, restoring the previous one on exit."""
    global _SINK
    previous = _SINK
    _SINK = sink
    try:
        yield sink
    finally:
        _SINK = previous


class InMemorySink:
    """A ring buffer of the last ``capacity`` completed root span trees."""

    def __init__(self, capacity: int = 256) -> None:
        self._roots: deque[Span] = deque(maxlen=capacity)

    @property
    def roots(self) -> list[Span]:
        """The buffered root spans, oldest first."""
        return list(self._roots)

    def handle(self, root: Span) -> None:
        self._roots.append(root)

    def clear(self) -> None:
        """Drop every buffered span."""
        self._roots.clear()

    def spans(self) -> Iterator[Span]:
        """Every buffered span (roots and descendants), depth-first."""
        for root in self._roots:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """All buffered spans with this name."""
        return [s for s in self.spans() if s.name == name]

    def __len__(self) -> int:
        return len(self._roots)


class JSONLSink:
    """Appends one JSON object per completed root span tree to a file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = self.path.open("a")

    def handle(self, root: Span) -> None:
        self._handle.write(json.dumps(root.to_dict()) + "\n")

    def close(self) -> None:
        """Flush and close the file."""
        self._handle.close()

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
