"""Flat profiles aggregated from recorded span trees.

A trace sink captures *trees* — one root span per ``answer()`` call with
the pipeline stages nested below it.  This module turns a batch of trees
into the gprof-style flat view a performance investigation actually
starts from: per span name, how many times it ran, its **cumulative**
time (with children), its **self** time (cumulative minus its children's
cumulative — the time attributable to that stage's own code), and the
p50/p95 of its per-call durations.  Because self time partitions each
root exactly, the self-time column always sums to the total recorded
root time — "where did the time go" has a complete answer.

The slowest root's **critical path** (the chain of slowest children from
the root down) is reported alongside, pointing at the stage to optimize
first.

Entry points:

* :func:`build_profile` — aggregate a list of root :class:`~repro.obs.trace.Span`
  trees (e.g. ``InMemorySink.roots``);
* :meth:`AggregationEngine.profile(query, msem, asem, repeat=N) <repro.core.engine.AggregationEngine.profile>`
  — run a query under a temporary sink and profile it;
* the CLI ``profile`` subcommand (``repro-bench profile --query ...``).
"""

from __future__ import annotations

import json
from collections.abc import Iterable

from repro.obs.metrics import percentile
from repro.obs.trace import Span


class ProfileRow:
    """Aggregated statistics of every span sharing one name."""

    __slots__ = ("name", "calls", "cumulative", "self_seconds", "durations")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.cumulative = 0.0
        self.self_seconds = 0.0
        #: Per-call cumulative durations (for the percentiles).
        self.durations: list[float] = []

    @property
    def p50(self) -> float:
        return percentile(self.durations, 50.0)

    @property
    def p95(self) -> float:
        return percentile(self.durations, 95.0)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "cumulative_seconds": self.cumulative,
            "self_seconds": self.self_seconds,
            "p50_seconds": self.p50,
            "p95_seconds": self.p95,
        }


class Profile:
    """A flat profile over a batch of root span trees.

    ``rows`` are sorted by self time, descending — the gprof convention:
    the top row is where the most non-delegated time went.
    """

    SCHEMA_VERSION = 1

    def __init__(
        self,
        rows: list[ProfileRow],
        *,
        total_seconds: float,
        root_count: int,
        critical_path: list[tuple[str, float]],
        metadata: dict | None = None,
    ) -> None:
        self.rows = sorted(
            rows, key=lambda row: row.self_seconds, reverse=True
        )
        self.total_seconds = total_seconds
        self.root_count = root_count
        self.critical_path = critical_path
        self.metadata = dict(metadata or {})

    def row(self, name: str) -> ProfileRow:
        """The row for one span name (``KeyError`` when absent)."""
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    @property
    def self_total(self) -> float:
        """Summed self time; equals ``total_seconds`` up to float error."""
        return sum(row.self_seconds for row in self.rows)

    def to_dict(self) -> dict:
        """A JSON-ready form of the whole profile."""
        return {
            "schema_version": self.SCHEMA_VERSION,
            "total_seconds": self.total_seconds,
            "root_count": self.root_count,
            "rows": [row.to_dict() for row in self.rows],
            "critical_path": [
                {"name": name, "seconds": seconds}
                for name, seconds in self.critical_path
            ],
            "metadata": dict(self.metadata),
        }

    def render_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render_text(self) -> str:
        """The flat-profile table plus the critical path, as fixed-width text."""
        width = max([len(row.name) for row in self.rows] + [4])
        lines = [
            f"flat profile: {self.root_count} root span(s), "
            f"{self.total_seconds * 1e3:.3f} ms total"
        ]
        header = (
            f"{'span':<{width}}{'calls':>8}{'cum ms':>12}{'self ms':>12}"
            f"{'self %':>8}{'p50 ms':>10}{'p95 ms':>10}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        total = self.total_seconds or 1.0
        for row in self.rows:
            lines.append(
                f"{row.name:<{width}}{row.calls:>8}"
                f"{row.cumulative * 1e3:>12.3f}"
                f"{row.self_seconds * 1e3:>12.3f}"
                f"{row.self_seconds / total * 100:>7.1f}%"
                f"{row.p50 * 1e3:>10.3f}{row.p95 * 1e3:>10.3f}"
            )
        if self.critical_path:
            lines.append("")
            lines.append("critical path (slowest root):")
            for depth, (name, seconds) in enumerate(self.critical_path):
                pad = "  " * depth
                lines.append(f"  {pad}{name}: {seconds * 1e3:.3f} ms")
        return "\n".join(lines)


def self_seconds(span: Span) -> float:
    """The span's own time: cumulative minus its children's cumulative.

    Clamped at zero — a child recorded as marginally longer than its
    parent (timer granularity) must not produce negative self time.
    """
    return max(0.0, span.seconds - sum(c.seconds for c in span.children))


def critical_path(root: Span) -> list[tuple[str, float]]:
    """The chain of slowest children from ``root`` down to a leaf."""
    path: list[tuple[str, float]] = []
    node: Span | None = root
    while node is not None:
        path.append((node.name, node.seconds))
        node = max(node.children, key=lambda c: c.seconds, default=None)
    return path


def build_profile(
    roots: Iterable[Span], *, metadata: dict | None = None
) -> Profile:
    """Aggregate root span trees into a :class:`Profile`.

    Every span in every tree contributes to the row of its name; the
    critical path is taken from the slowest root.  An empty batch yields
    an empty profile (no rows, zero total).
    """
    roots = list(roots)
    rows: dict[str, ProfileRow] = {}
    for root in roots:
        for node in root.walk():
            row = rows.get(node.name)
            if row is None:
                row = rows[node.name] = ProfileRow(node.name)
            row.calls += 1
            row.cumulative += node.seconds
            row.self_seconds += self_seconds(node)
            row.durations.append(node.seconds)
    slowest = max(roots, key=lambda r: r.seconds, default=None)
    return Profile(
        list(rows.values()),
        total_seconds=sum(root.seconds for root in roots),
        root_count=len(roots),
        critical_path=critical_path(slowest) if slowest is not None else [],
        metadata=metadata,
    )
