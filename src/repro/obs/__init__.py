"""Observability for the answering pipeline: spans, metrics, timers.

Zero-dependency (stdlib only) and near-free when idle: with no trace sink
installed, :func:`~repro.obs.trace.span` returns a shared no-op object,
and metrics record one dictionary operation per pipeline *stage*, never
per tuple.

* :mod:`repro.obs.trace` — nestable wall-clock spans with pluggable sinks
  (in-memory ring buffer, JSONL file).
* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges,
  and histograms (with reservoir p50/p95/p99), with chained per-engine
  child registries.
* :mod:`repro.obs.timers` — the shared :class:`~repro.obs.timers.Stopwatch`
  behind the CLI, the benchmark harness, and ``EXPLAIN ANALYZE``.
* :mod:`repro.obs.profile` — flat profiles (calls, cumulative, *self*
  time, percentiles, critical path) aggregated from recorded span trees.
* :mod:`repro.obs.querylog` — the always-on ring buffer of structured
  per-query records behind ``engine.recent_queries()`` and the
  slow-query JSONL trail.
* :mod:`repro.obs.export` — Prometheus text exposition over the metrics
  registry (and the scrape endpoint behind ``repro stats --serve``).

See ``docs/observability.md`` for the span and metric catalogs, the
query-log record schema, and the exporter's naming conventions.
"""

from repro.obs import export, metrics, querylog, trace
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry, percentile
from repro.obs.profile import Profile, build_profile
from repro.obs.querylog import QueryLog, QueryRecord
from repro.obs.timers import Stopwatch, time_call
from repro.obs.trace import (
    InMemorySink,
    JSONLSink,
    Span,
    add_attribute,
    install_sink,
    span,
    uninstall_sink,
    use_sink,
)

__all__ = [
    "InMemorySink",
    "JSONLSink",
    "MetricsRegistry",
    "Profile",
    "QueryLog",
    "QueryRecord",
    "Span",
    "Stopwatch",
    "add_attribute",
    "build_profile",
    "export",
    "install_sink",
    "metrics",
    "percentile",
    "querylog",
    "render_prometheus",
    "span",
    "time_call",
    "trace",
    "uninstall_sink",
    "use_sink",
]
