"""An always-on structured log of every query execution.

Spans (:mod:`repro.obs.trace`) answer *where time went inside* one
execution; metrics (:mod:`repro.obs.metrics`) answer *how much of
everything happened* cumulatively.  The query log answers the operational
question in between: *which queries ran, what did each one cost, and what
did it get* — one :class:`QueryRecord` per outermost execution, capturing
the wall-clock timestamp, the query digest, the chosen (and, after a
guard breach, degraded) lane, the guard's partial-progress counters, the
DKW epsilon whenever a sampling estimator produced the answer, the error
class on failure, and the duration.

The log is a bounded ring buffer on the engine's
:class:`~repro.core.execute.ExecutionContext`, recorded from the
outermost frame of :func:`~repro.core.execute.execute_plan` — success,
degradation, and error paths alike — and surfaced as
:meth:`engine.recent_queries()
<repro.core.engine.AggregationEngine.recent_queries>`.  Recording a query
is a handful of attribute assignments plus one deque append; there is no
off switch because none is needed.

A *slow-query threshold* (``slow_query_ms``) optionally persists
offending records: any record at or above the threshold is appended as
one JSON object per line to ``slow_query_path``, the shape audit
tooling tails.  The record schema is documented in
``docs/observability.md``.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import deque
from pathlib import Path

#: Default ring-buffer capacity (engine kwarg ``query_log_capacity``).
DEFAULT_CAPACITY = 256

#: Record statuses.  The engine's outermost execution frame writes the
#: first three; the serving tier (:mod:`repro.serve`) additionally
#: records admission-control rejections as ``shed`` — a request that
#: never executed, with ``lane`` set to ``"admission"`` and ``error``
#: naming the shed class — so one log stream accounts for admitted and
#: rejected work alike.
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_ERROR = "error"
STATUS_SHED = "shed"

#: The ``lane`` value of records that never reached an execution lane
#: (admission-control sheds and cost-based rejections).
ADMISSION_LANE = "admission"


def query_digest(text: str) -> str:
    """A short stable digest of the canonical query text.

    Lets log consumers group and join records by query identity without
    carrying (or exposing) full query text in downstream systems.
    """
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:12]


class QueryRecord:
    """One executed query, as the audit trail sees it.

    Attributes
    ----------
    ts:
        Wall-clock epoch seconds when execution started (correlates with
        ``Span.start_ts``).
    query / digest:
        The canonical SQL text and its :func:`query_digest`.
    mapping_semantics / aggregate_semantics:
        The semantics cell, as the enum string values.
    lane:
        The planner-chosen execution lane.
    status:
        ``"ok"`` | ``"degraded"`` | ``"error"`` | ``"shed"`` (the last
        written only by the serving tier's admission controller).
    degraded:
        The degradation event dict (``from``/``to``/``reason``/
        ``progress``, plus ``samples``/``epsilon`` for a sampling rerun),
        or ``None``.
    breach:
        Class name of the guardrail error that tripped (recorded whether
        degradation recovered or the error propagated), or ``None``.
    error:
        Class name of the error the caller saw, or ``None`` on success
        (a recovered breach leaves ``error`` ``None`` but sets
        ``breach``).
    seconds:
        Monotonic wall-clock duration of the outermost execution frame.
    rows:
        Input size: row count of the compiled query's source table.
    worlds:
        Possible worlds the guard counted (``None`` when no guard ran —
        world counting lives in the guard's cooperative checks).
    guard:
        The guard's final partial-progress counters (``rows``/``worlds``
        processed), or ``None`` when no budget was active.
    epsilon:
        The DKW accuracy contract when a sampling estimator produced the
        answer (directly planned or degraded-to), else ``None``.
    plan_digest:
        Short digest of the plan identity (query text + cell + lane
        chain), so log consumers can group records by *plan*, not just by
        query — a replanned query gets a new digest.
    est_cost / actual_cost:
        The planner's estimated cost units for the chosen lane, and the
        cost recomputed from what actually ran (``None`` when the run
        aborted before completing).  Their ratio is the per-query
        misestimation the ``planner.misestimate.cost`` histogram
        aggregates.
    """

    __slots__ = (
        "ts",
        "query",
        "digest",
        "mapping_semantics",
        "aggregate_semantics",
        "lane",
        "status",
        "degraded",
        "breach",
        "error",
        "seconds",
        "rows",
        "worlds",
        "guard",
        "epsilon",
        "plan_digest",
        "est_cost",
        "actual_cost",
    )

    def __init__(
        self,
        *,
        ts: float,
        query: str,
        mapping_semantics: str,
        aggregate_semantics: str,
        lane: str,
        status: str,
        seconds: float,
        rows: int,
        degraded: dict | None = None,
        breach: str | None = None,
        error: str | None = None,
        worlds: int | None = None,
        guard: dict | None = None,
        epsilon: float | None = None,
        plan_digest: str | None = None,
        est_cost: float | None = None,
        actual_cost: float | None = None,
    ) -> None:
        self.ts = ts
        self.query = query
        self.digest = query_digest(query)
        self.mapping_semantics = mapping_semantics
        self.aggregate_semantics = aggregate_semantics
        self.lane = lane
        self.status = status
        self.degraded = degraded
        self.breach = breach
        self.error = error
        self.seconds = seconds
        self.rows = rows
        self.worlds = worlds
        self.guard = guard
        self.epsilon = epsilon
        self.plan_digest = plan_digest
        self.est_cost = est_cost
        self.actual_cost = actual_cost

    def to_dict(self) -> dict:
        """A JSON-ready form (the JSONL slow-log line shape)."""
        return {
            "ts": self.ts,
            "query": self.query,
            "digest": self.digest,
            "mapping_semantics": self.mapping_semantics,
            "aggregate_semantics": self.aggregate_semantics,
            "lane": self.lane,
            "status": self.status,
            "degraded": self.degraded,
            "breach": self.breach,
            "error": self.error,
            "seconds": self.seconds,
            "rows": self.rows,
            "worlds": self.worlds,
            "guard": self.guard,
            "epsilon": self.epsilon,
            "plan_digest": self.plan_digest,
            "est_cost": self.est_cost,
            "actual_cost": self.actual_cost,
        }

    def __repr__(self) -> str:
        return (
            f"QueryRecord({self.digest} {self.lane} {self.status} "
            f"{self.seconds * 1e3:.3f} ms)"
        )


class QueryLog:
    """A thread-safe ring buffer of the last ``capacity`` query records.

    ``slow_ms``/``slow_path`` arm the slow-query trail: records whose
    duration is at or above the threshold are additionally appended (one
    JSON object per line, under the lock) to the file at ``slow_path``.
    A threshold of ``0`` persists every record — the smoke-test and
    trace-everything configuration.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        slow_ms: float | None = None,
        slow_path: str | Path | None = None,
    ) -> None:
        self.slow_ms = slow_ms
        self.slow_path = Path(slow_path) if slow_path is not None else None
        self._records: deque[QueryRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, record: QueryRecord) -> None:
        """Append one record (and persist it when it is slow)."""
        slow = (
            self.slow_ms is not None
            and self.slow_path is not None
            and record.seconds * 1000.0 >= self.slow_ms
        )
        with self._lock:
            self._records.append(record)
            if slow:
                with self.slow_path.open("a") as handle:
                    handle.write(json.dumps(record.to_dict()) + "\n")

    def recent(self, n: int | None = None) -> list[QueryRecord]:
        """The last ``n`` records (all buffered ones by default), oldest
        first."""
        with self._lock:
            records = list(self._records)
        if n is not None:
            records = records[-n:] if n > 0 else []
        return records

    def clear(self) -> None:
        """Drop every buffered record (the slow-query file is untouched)."""
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def now() -> float:
    """Wall-clock epoch seconds (one seam for tests to patch)."""
    return time.time()
