"""The plan-feedback store: observed costs that calibrate the cost model.

:class:`PlanFeedback` keeps a bounded, thread-safe record of what each
``(semantics cell, lane)`` pair actually cost — ``(rows, worlds, cost
units, seconds)`` per completed execution — recorded by the outermost
frame of :func:`repro.core.execute.execute_plan` when the engine opts in
with ``calibrate=True``.  The store answers the calibration questions
the :class:`~repro.core.cost.CostModel` asks:

* :meth:`per_row_seconds` — the median observed seconds per row visit of
  a sequential lane;
* :meth:`linear_fit` — a least-squares ``seconds = a + b·rows`` fit for
  the parallel lane (the intercept *is* the measured pool overhead);
* :meth:`seconds_per_unit` — the median seconds per cost unit, which
  turns unit-cost estimates into wall-clock predictions.

Everything is observational: the store never changes an answer, only
*when the planner picks which bit-identical lane*.  JSON persistence
(:meth:`save`/:meth:`load`) lets calibration survive restarts — the
engine loads at construction when given a ``feedback_path`` and saves on
``close()``.

Like the rest of :mod:`repro.obs`: zero dependencies, bounded memory
(per-key deques), and cheap on the hot path (one tuple append under a
lock per recorded execution).
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path

#: Observations kept per (cell, lane) key — enough for stable medians
#: and fits, bounded against unbounded query churn.
DEFAULT_CAPACITY = 128

#: Fewest observations before a calibration answer is offered; below
#: this the model keeps its static defaults.
MIN_OBSERVATIONS = 3


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class PlanFeedback:
    """Bounded per-(cell, lane) observations of actual execution cost."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = max(int(capacity), 1)
        self._lock = threading.Lock()
        #: key -> list of (rows, worlds, cost_units, seconds); append-only
        #: up to ``capacity``, then oldest-first eviction.
        self._observations: dict[
            tuple[str, str], list[tuple[float, float, float, float]]
        ] = {}

    @staticmethod
    def _key(cell: str, lane: str) -> tuple[str, str]:
        return (cell, lane)

    def record(
        self,
        cell: str,
        lane: str,
        *,
        rows: float,
        worlds: float,
        cost: float,
        seconds: float,
    ) -> None:
        """Record one completed execution's actual cost."""
        if seconds < 0 or not math.isfinite(seconds):
            return
        entry = (float(rows), float(worlds), float(cost), float(seconds))
        with self._lock:
            bucket = self._observations.setdefault(self._key(cell, lane), [])
            bucket.append(entry)
            if len(bucket) > self.capacity:
                del bucket[0: len(bucket) - self.capacity]

    def observations(
        self, cell: str, lane: str
    ) -> list[tuple[float, float, float, float]]:
        """The recorded ``(rows, worlds, cost, seconds)`` tuples, oldest
        first."""
        with self._lock:
            return list(self._observations.get(self._key(cell, lane), ()))

    def count(self, cell: str, lane: str) -> int:
        with self._lock:
            return len(self._observations.get(self._key(cell, lane), ()))

    def __len__(self) -> int:
        with self._lock:
            return sum(len(b) for b in self._observations.values())

    # -- calibration answers -------------------------------------------------

    def per_row_seconds(self, cell: str, lane: str) -> float | None:
        """Median observed seconds per row visit, or ``None`` without
        enough data."""
        rates = [
            seconds / rows
            for rows, _, _, seconds in self.observations(cell, lane)
            if rows > 0
        ]
        if len(rates) < MIN_OBSERVATIONS:
            return None
        return _median(rates)

    def seconds_per_unit(self, cell: str, lane: str) -> float | None:
        """Median observed seconds per cost unit, or ``None``."""
        rates = [
            seconds / cost
            for _, _, cost, seconds in self.observations(cell, lane)
            if cost and cost > 0
        ]
        if len(rates) < MIN_OBSERVATIONS:
            return None
        return _median(rates)

    def linear_fit(
        self, cell: str, lane: str
    ) -> tuple[float, float] | None:
        """Least-squares ``seconds = a + b·rows`` over the observations.

        Returns ``(a, b)`` with the intercept clamped at zero (a negative
        measured overhead is noise), or ``None`` without
        :data:`MIN_OBSERVATIONS` points spanning at least two distinct
        row counts (a fit needs slope information).
        """
        points = [
            (rows, seconds)
            for rows, _, _, seconds in self.observations(cell, lane)
            if rows > 0
        ]
        if len(points) < MIN_OBSERVATIONS:
            return None
        if len({rows for rows, _ in points}) < 2:
            return None
        n = float(len(points))
        mean_x = sum(x for x, _ in points) / n
        mean_y = sum(y for _, y in points) / n
        sxx = sum((x - mean_x) ** 2 for x, _ in points)
        if sxx == 0:
            return None
        sxy = sum((x - mean_x) * (y - mean_y) for x, y in points)
        slope = sxy / sxx
        intercept = mean_y - slope * mean_x
        return (max(intercept, 0.0), max(slope, 0.0))

    # -- introspection and persistence ---------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready summary per (cell, lane): counts and calibration.

        The shape behind ``engine.feedback_snapshot()`` and the
        ``repro-bench feedback`` rendering.
        """
        with self._lock:
            keys = list(self._observations)
        summary: dict[str, dict] = {}
        for cell, lane in sorted(keys):
            entry: dict = {
                "observations": self.count(cell, lane),
            }
            per_row = self.per_row_seconds(cell, lane)
            if per_row is not None:
                entry["per_row_seconds"] = per_row
            per_unit = self.seconds_per_unit(cell, lane)
            if per_unit is not None:
                entry["seconds_per_unit"] = per_unit
            fit = self.linear_fit(cell, lane)
            if fit is not None:
                entry["fit"] = {"intercept": fit[0], "per_row": fit[1]}
            summary[f"{cell}|{lane}"] = entry
        return summary

    def to_dict(self) -> dict:
        """The full persistent form (see :meth:`save`)."""
        with self._lock:
            observations = {
                f"{cell}|{lane}": [list(entry) for entry in bucket]
                for (cell, lane), bucket in sorted(
                    self._observations.items()
                )
            }
        return {
            "version": 1,
            "capacity": self.capacity,
            "observations": observations,
        }

    def save(self, path: str | Path) -> None:
        """Write the store as JSON (atomic enough for a calibration file)."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=1) + "\n")

    def load(self, path: str | Path) -> int:
        """Merge a previously-saved store into this one.

        Returns the number of observations loaded.  A missing file loads
        zero observations (first run with a configured ``feedback_path``);
        malformed content raises ``ValueError`` like any bad JSON input.
        """
        path = Path(path)
        if not path.exists():
            return 0
        document = json.loads(path.read_text())
        loaded = 0
        for key, bucket in document.get("observations", {}).items():
            cell, _, lane = key.partition("|")
            if not cell or not lane:
                continue
            for entry in bucket:
                rows, worlds, cost, seconds = entry
                self.record(
                    cell, lane,
                    rows=rows, worlds=worlds, cost=cost, seconds=seconds,
                )
                loaded += 1
        return loaded
