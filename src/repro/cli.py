"""Command-line entry point: ``repro-bench`` (or ``python -m repro.cli``).

Subcommands regenerate the paper's tables and figures::

    repro-bench table3            # the six semantics of query Q1
    repro-bench fig6              # the complexity matrix
    repro-bench fig7 ... fig12    # the Section V experiments
    repro-bench ablations         # this library's own ablation studies
    repro-bench all               # everything, in order

``--full`` switches a figure to the paper's own scale (minutes to hours
and, for fig12, several GB of RAM).

There is also a standalone query tool: given a CSV of source data and a
JSON p-mapping (see :mod:`repro.schema.serialize`), answer a query under
any semantics cell::

    repro-bench query --data listings.csv --mapping mapping.json \\
        --query "SELECT COUNT(*) FROM T1 WHERE date < '2008-1-20'" \\
        --mapping-semantics by-tuple --aggregate-semantics distribution

``--explain`` prints the execution plan (lane, Figure 6 complexity class,
fallback chain) without executing; ``--explain-analyze`` executes and
attaches per-span wall-clock timings and the run's metric deltas (combine
with ``--repeat N`` to watch the plan cache convert misses into hits).

Three observability subcommands round out the tooling::

    repro-bench profile --query "SELECT COUNT(*) FROM T" \\
        --msem by-tuple --asem distribution   # flat per-span profile
    repro-bench bench --suite quick           # registered benchmark suites
    repro-bench stats --query "SELECT COUNT(*) FROM T"   # Prometheus text

``stats`` renders the metrics registry in the Prometheus text exposition
format (``--serve`` keeps the process alive behind a stdlib HTTP scrape
endpoint on ``/metrics``), and ``query --trace-jsonl PATH`` appends the
invocation's full span trees to a JSONL file.

``query`` accepts execution guardrails: ``--timeout-ms`` (wall-clock
deadline), ``--max-worlds`` (cap on enumerated/sampled possible worlds),
and ``--degrade`` (fall back to a cheaper lane instead of failing).

Two more observability subcommands read the telemetry back::

    repro-bench recent --file slow.jsonl      # query-log records as a table
    repro-bench feedback --collect --query "SELECT COUNT(*) FROM T"

``recent`` renders structured query-log records (a slow-query JSONL
trail, or a fresh synthetic run) as an aligned table or ``--json``;
``feedback`` inspects — or, with ``--collect``, populates — the
cost-model calibration store (see ``docs/observability.md``).

Errors never print a traceback: they emit one ``error: ...`` line on
stderr and exit with a code naming the failure class — 2 generic/usage,
3 SQL syntax, 4 unsupported query, 5 schema, 6 mapping, 7 reformulation,
8 storage, 9 intractable, 10 deadline, 11 budget, 12 other guardrail,
13 evaluation, 14 metrics export, 15 service startup (bind failure),
16 other serving errors (see :data:`EXIT_CODES`).

Finally, ``serve`` runs the asyncio multi-tenant query service of
:mod:`repro.serve` (see ``docs/serving.md``)::

    repro-bench serve --port 8080 --max-concurrency 8 --queue-depth 16 \\
        --synthetic demo:500:8:5 --tenant gold:timeout_ms=500,max_worlds=1e6

It serves ``POST /query`` plus ``/healthz``, ``/readyz``, ``/metrics``
and ``/datasets``, sheds overload with typed 429/503 JSON errors, and
drains gracefully on SIGTERM.
"""

from __future__ import annotations

import argparse
import sys

from repro import exceptions
from repro.bench import experiments
from repro.obs.timers import Stopwatch

#: Exit codes per error class (the shared table in
#: :data:`repro.exceptions.ERROR_EXIT_CODES`, re-exported here for
#: backwards compatibility).  Code 1 is reserved for shape-check
#: failures, 2 for usage errors and errors outside this table.
EXIT_CODES: tuple[tuple[type, int], ...] = exceptions.ERROR_EXIT_CODES

_exit_code = exceptions.exit_code_for


def _fail(error: BaseException) -> int:
    """Print a clean one-line error to stderr and return its exit code."""
    message = " ".join(str(error).split())
    print(f"error: {message}", file=sys.stderr)
    return _exit_code(error)


def _add_figure(subparsers, name: str, help_text: str):
    parser = subparsers.add_parser(name, help=help_text)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at the paper's own scale instead of the laptop default",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-algorithm budget in seconds")
    return parser


def _kwargs(args: argparse.Namespace) -> dict:
    kwargs: dict = {"seed": args.seed}
    if args.timeout is not None:
        kwargs["timeout"] = args.timeout
    return kwargs


def _run_figure(name: str, args: argparse.Namespace) -> bool:
    if name == "fig6":
        return experiments.figure6()
    if name == "fig7":
        kwargs = _kwargs(args)
        if args.full:
            kwargs["tuple_counts"] = (4, 8, 12, 16, 20)
        return experiments.figure7(**kwargs)
    if name == "fig8":
        kwargs = _kwargs(args)
        if args.full:
            kwargs["mapping_counts"] = (2, 4, 6, 8, 10, 12)
        return experiments.figure8(**kwargs)
    if name == "fig9":
        kwargs = _kwargs(args)
        if args.full:
            kwargs["tuple_counts"] = (10000, 20000, 50000, 100000)
            kwargs.setdefault("timeout", 120.0)
        return experiments.figure9(**kwargs)
    if name == "fig10":
        kwargs = _kwargs(args)
        if args.full:
            kwargs["num_tuples"] = 50000
            kwargs["num_attributes"] = 500
        return experiments.figure10(**kwargs)
    if name == "fig11":
        kwargs = _kwargs(args)
        if args.full:
            kwargs["tuple_counts"] = (1000000, 2000000, 5000000)
            kwargs["vectorized"] = True
        return experiments.figure11(**kwargs)
    if name == "fig12":
        kwargs = _kwargs(args)
        if args.full:
            kwargs["tuple_counts"] = (15000000, 20000000, 30000000)
            kwargs["vectorized"] = True
        return experiments.figure12(**kwargs)
    raise AssertionError(f"unhandled figure {name}")


def _run_streamed_query(args: argparse.Namespace) -> int:
    """``query --stream``: fold the CSV through an accumulator, O(1) rows."""
    from repro.core import guard, streaming
    from repro.core.semantics import AggregateSemantics
    from repro.exceptions import ReproError, UnsupportedQueryError
    from repro.schema.serialize import load_pmapping
    from repro.sql.ast import AggregateOp
    from repro.sql.parser import parse_query
    from repro.storage.csv_io import iter_csv_rows

    factories = {
        (AggregateOp.COUNT, AggregateSemantics.RANGE):
            streaming.RangeCountAccumulator,
        (AggregateOp.COUNT, AggregateSemantics.DISTRIBUTION):
            streaming.DistributionCountAccumulator,
        (AggregateOp.COUNT, AggregateSemantics.EXPECTED_VALUE):
            streaming.ExpectedCountAccumulator,
        (AggregateOp.SUM, AggregateSemantics.RANGE):
            streaming.RangeSumAccumulator,
        (AggregateOp.SUM, AggregateSemantics.EXPECTED_VALUE):
            streaming.ExpectedSumAccumulator,
        (AggregateOp.AVG, AggregateSemantics.RANGE):
            streaming.RangeAvgAccumulator,
        (AggregateOp.MIN, AggregateSemantics.RANGE):
            lambda stream: streaming.RangeMinMaxAccumulator(
                stream, maximize=False),
        (AggregateOp.MAX, AggregateSemantics.RANGE):
            lambda stream: streaming.RangeMinMaxAccumulator(
                stream, maximize=True),
    }
    try:
        if args.mapping_semantics != "by-tuple":
            raise UnsupportedQueryError(
                "--stream supports the by-tuple semantics; drop --stream "
                "for by-table queries"
            )
        pmapping = load_pmapping(args.mapping)
        query = parse_query(args.query)
        cell = (query.aggregate.op, AggregateSemantics(args.aggregate_semantics))
        factory = factories.get(cell)
        if factory is None:
            raise UnsupportedQueryError(
                f"no streaming accumulator for {cell[0].value} under the "
                f"{cell[1].value} semantics"
            )
        budget = guard.Budget(
            timeout_ms=args.timeout_ms, max_worlds=args.max_worlds
        )
        with guard.guarded(budget):
            answer = streaming.answer_stream(
                iter_csv_rows(pmapping.source, args.data),
                pmapping.source,
                pmapping,
                query,
                factory,
            )
    except (ReproError, OSError) as error:
        return _fail(error)
    print(answer)
    return 0


def _parse_tenant_spec(spec: str):
    """``NAME:key=value,...`` -> TenantPolicy (keys: timeout_ms,
    max_rows, max_worlds, max_support, samples)."""
    from repro.core.guard import Budget
    from repro.serve.registry import TenantPolicy

    name, _, rest = spec.partition(":")
    if not name:
        raise ValueError(f"tenant spec {spec!r} has no name")
    limits: dict = {}
    samples = None
    if rest:
        for pair in rest.split(","):
            key, separator, value = pair.partition("=")
            key = key.strip()
            if not separator:
                raise ValueError(
                    f"tenant spec {spec!r}: expected key=value, got {pair!r}"
                )
            if key == "samples":
                samples = int(value)
            elif key in ("timeout_ms", "max_rows", "max_worlds", "max_support"):
                limits[key] = float(value)
            else:
                raise ValueError(
                    f"tenant spec {spec!r}: unknown key {key!r} (choices: "
                    "timeout_ms, max_rows, max_worlds, max_support, samples)"
                )
    budget = Budget(**limits) if limits else None
    return TenantPolicy(name, budget=budget, samples=samples)


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: the asyncio multi-tenant query service.

    Datasets come from repeatable ``--dataset NAME=DATA.csv:MAPPING.json``
    and/or ``--synthetic NAME[:TUPLES[:ATTRS[:MAPPINGS]]]`` flags (a
    default synthetic ``demo`` dataset when neither is given, so
    ``repro-bench serve`` alone yields a queryable endpoint).  Runs until
    SIGTERM/SIGINT, then drains gracefully and prints the drain report.
    Exit 15 when the socket cannot be bound.
    """
    import asyncio
    import json as _json

    from repro.exceptions import ReproError
    from repro.serve import DatasetRegistry, QueryService, ServeConfig

    registry = DatasetRegistry()
    try:
        for spec in args.dataset:
            name, separator, paths = spec.partition("=")
            data_path, path_separator, mapping_path = paths.partition(":")
            if not separator or not path_separator or not name:
                print(
                    f"error: bad --dataset {spec!r}; expected "
                    "NAME=DATA.csv:MAPPING.json",
                    file=sys.stderr,
                )
                return 2
            registry.load_csv(name, data_path, mapping_path)
        for spec in args.synthetic:
            parts = spec.split(":")
            name = parts[0]
            numbers = [int(part) for part in parts[1:4]]
            registry.add_synthetic(
                name,
                tuples=numbers[0] if len(numbers) > 0 else 500,
                attributes=numbers[1] if len(numbers) > 1 else 8,
                mappings=numbers[2] if len(numbers) > 2 else 5,
                seed=args.seed,
            )
        if len(registry) == 0:
            registry.add_synthetic("demo", seed=args.seed)
        for spec in args.tenant:
            registry.set_tenant(_parse_tenant_spec(spec))
    except (ValueError, OSError) as error:
        registry.close()
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        registry.close()
        return _fail(error)

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        queue_depth=args.queue_depth,
        queue_timeout_ms=args.queue_timeout_ms,
        default_timeout_ms=args.default_timeout_ms,
        drain_timeout_ms=args.drain_timeout_ms,
    )
    service = QueryService(registry, config=config)

    async def _serve() -> dict:
        await service.start()
        service.install_signal_handlers()
        print(
            f"serving {', '.join(registry.names())} on {service.url} "
            "(SIGTERM drains gracefully)",
            flush=True,
        )
        return await service.serve_forever()

    try:
        report = asyncio.run(_serve())
    except ReproError as error:
        registry.close()
        return _fail(error)
    print(f"drained: {_json.dumps(report, sort_keys=True)}")
    return 0


def _run_match(args: argparse.Namespace) -> int:
    """The ``match`` subcommand: two CSVs -> validated JSON p-mapping."""
    from repro.exceptions import ReproError
    from repro.schema.correspondence import AttributeCorrespondence
    from repro.schema.matcher import MatcherConfig, SchemaMatcher
    from repro.schema.serialize import save_pmapping
    from repro.storage.csv_io import infer_relation, load_table_csv

    try:
        known = []
        for pin in args.known:
            source_attr, separator, target_attr = pin.partition("=")
            if not separator or not source_attr or not target_attr:
                print(
                    f"error: --known expects SRC=TGT, got {pin!r}",
                    file=sys.stderr,
                )
                return 2
            known.append(AttributeCorrespondence(source_attr, target_attr))
        source = load_table_csv(
            infer_relation(args.source_name, args.source), args.source
        )
        target = load_table_csv(
            infer_relation(args.target_name, args.target), args.target
        )
        matcher = SchemaMatcher(
            source,
            target,
            known=known,
            config=MatcherConfig(
                top_k=args.top_k,
                threshold=args.threshold,
                temperature=args.temperature,
            ),
        )
        pmapping = matcher.pmapping()
        save_pmapping(pmapping, args.output)
    except (ReproError, OSError) as error:
        return _fail(error)
    print(f"wrote {len(pmapping)} candidate mappings to {args.output}:")
    for mapping, probability in pmapping:
        pairs = ", ".join(
            f"{corr.source}->{corr.target}" for corr in mapping.correspondences
        )
        print(f"  {mapping.describe():>8}  P={probability:.4f}  {pairs}")
    return 0


def _render_plan(plan: dict, indent: int = 0) -> list[str]:
    """Text rendering of :meth:`ExecutionPlan.to_dict` (the --explain view)."""
    pad = "  " * indent
    cell = plan["cell"]
    lines = [f"{pad}{plan['algorithm'] or plan['lane']}"]
    lines.append(
        f"{pad}  cell: ({cell['op']}, {cell['mapping_semantics']}, "
        f"{cell['aggregate_semantics']})"
    )
    lines.append(f"{pad}  lane: {plan['lane']}")
    lines.append(f"{pad}  complexity: {plan['complexity']}")
    lines.append(f"{pad}  fallback chain: {' -> '.join(plan['fallback_chain'])}")
    degradation = plan.get("degradation_chain") or []
    if degradation:
        lines.append(
            f"{pad}  degradation chain: {' -> '.join(degradation)}"
        )
    estimate = plan.get("estimate")
    if estimate:
        lines.append(
            f"{pad}  estimate: rows={estimate['rows']:g} "
            f"worlds={estimate['worlds']:g} "
            f"support={estimate['support']:g} cost={estimate['cost']:g}"
        )
        cutover = estimate.get("cutover_rows")
        if cutover is not None:
            if cutover >= (1 << 62):
                lines.append(
                    f"{pad}  parallel cutover: never (calibrated: parallel "
                    "does not pay off here)"
                )
            else:
                lines.append(f"{pad}  parallel cutover: {cutover} rows")
        if estimate.get("predicted_seconds") is not None:
            lines.append(
                f"{pad}  predicted: "
                f"{estimate['predicted_seconds'] * 1e3:.3f} ms (calibrated)"
            )
        preempted = estimate.get("preempted")
        if preempted:
            lines.append(
                f"{pad}  preempted: {preempted['from']} -> "
                f"{preempted['to']} (estimated {preempted['resource']} "
                f"exceed budget limit {preempted['limit']})"
            )
    if plan["paper_reference"]:
        lines.append(f"{pad}  paper: {plan['paper_reference']}")
    if plan["fallback"] is not None:
        lines.append(f"{pad}  fallback:")
        lines.extend(_render_plan(plan["fallback"], indent + 2))
    if plan["inner"] is not None:
        lines.append(f"{pad}  inner:")
        lines.extend(_render_plan(plan["inner"], indent + 2))
    return lines


def _render_span(span: dict, indent: int = 0) -> list[str]:
    """Text rendering of one span tree (the --explain-analyze timings)."""
    pad = "  " * indent
    detail = ""
    lane = span["attributes"].get("lane")
    if lane:
        detail = f"  [{lane}]"
    lines = [f"{pad}{span['name']}: {span['seconds'] * 1e3:.3f} ms{detail}"]
    for child in span["children"]:
        lines.extend(_render_span(child, indent + 1))
    return lines


def _estimate_vs_actual_lines(report: dict) -> list[str]:
    """Postgres-style ``est rows=... actual rows=... (xR)`` lines for the
    executed lane, from the report's estimates/actuals/misestimation."""
    estimates = report.get("estimates")
    actuals = report.get("actuals")
    if not estimates or not actuals:
        return []
    ratios = report.get("misestimation") or {}
    lines = [f"  lane: {report.get('executed_lane', estimates['lane'])}"]
    for kind in ("rows", "worlds", "support", "cost"):
        expected = estimates.get(kind)
        observed = actuals.get(kind)
        if expected is None:
            continue
        rendered = f"  est {kind}={expected:g}"
        if observed is not None:
            rendered += f" actual {kind}={observed:g}"
        if kind in ratios:
            rendered += f" (x{ratios[kind]:.2f})"
        lines.append(rendered)
    predicted = estimates.get("predicted_seconds")
    if predicted is not None:
        lines.append(f"  predicted seconds={predicted:g} (calibrated)")
    return lines


def _print_explain_analyze(report: dict) -> None:
    print("plan:")
    for line in _render_plan(report["plan"], 1):
        print(line)
    cost_lines = _estimate_vs_actual_lines(report)
    if cost_lines:
        print("cost:")
        for line in cost_lines:
            print(line)
    print(f"answer: {report['answer']}")
    print(
        f"executions: {report['executions']} in {report['seconds']:.4f}s "
        f"({report['seconds'] / report['executions'] * 1e3:.3f} ms/execution)"
    )
    print("spans:")
    for root in report["spans"]:
        for line in _render_span(root, 1):
            print(line)
    print("metrics:")
    for name, value in report["metrics"].items():
        if isinstance(value, dict):
            # count/sum are run deltas (+); percentiles are absolute
            # snapshots of the distribution, so they render without one.
            rendered = " ".join(
                f"{k}={v:g}" if k in ("p50", "p95", "p99") else f"{k}=+{v:g}"
                for k, v in value.items()
            )
            print(f"  {name} {rendered}")
        else:
            print(f"  {name} +{value:g}")


def _run_profile(args: argparse.Namespace) -> int:
    """The ``profile`` subcommand: a flat per-span profile of a query.

    With ``--data``/``--mapping`` it profiles the query over real inputs;
    without them it generates a synthetic workload whose mediated relation
    takes its name from the query's FROM clause, so

        repro-bench profile --query "SELECT COUNT(*) FROM T" \\
            --msem by-tuple --asem distribution

    works with no files on disk.
    """
    from repro.core.engine import AggregationEngine
    from repro.exceptions import ReproError

    if (args.data is None) != (args.mapping is None):
        print(
            "error: --data and --mapping go together (omit both for a "
            "synthetic workload)",
            file=sys.stderr,
        )
        return 2
    try:
        if args.data is not None:
            from repro.schema.serialize import load_pmapping
            from repro.storage.csv_io import load_table_csv

            pmapping = load_pmapping(args.mapping)
            table = load_table_csv(pmapping.source, args.data)
        else:
            from repro.data import synthetic
            from repro.sql.parser import parse_query

            target = synthetic.mediated_relation(
                parse_query(args.query).source.name
            )
            source = synthetic.source_relation(args.attributes)
            table = synthetic.generate_source_table(
                args.tuples, args.attributes, seed=args.seed, relation=source
            )
            pmapping = synthetic.generate_pmapping(
                source, args.mappings, seed=args.seed, target=target
            )
        engine = AggregationEngine(
            [table],
            pmapping,
            allow_exponential=args.allow_exponential,
            allow_sampling=args.samples is not None,
        )
        with engine:
            profile = engine.profile(
                args.query,
                args.mapping_semantics,
                args.aggregate_semantics,
                repeat=args.repeat,
                samples=args.samples,
            )
    except (ReproError, OSError) as error:
        return _fail(error)
    print(profile.render_json() if args.json else profile.render_text())
    return 0


def _run_query(args: argparse.Namespace) -> int:
    """The ``query`` subcommand: CSV + JSON p-mapping -> printed answer."""
    from contextlib import ExitStack

    from repro.exceptions import ReproError

    if args.stream:
        if args.trace_jsonl:
            print(
                "error: --trace-jsonl requires the engine pipeline; drop "
                "--stream",
                file=sys.stderr,
            )
            return 2
        if args.explain or args.explain_analyze:
            print(
                "error: --explain/--explain-analyze require the engine "
                "pipeline; drop --stream",
                file=sys.stderr,
            )
            return 2
        if args.repeat > 1:
            print(
                "error: --repeat does not combine with --stream (streaming "
                "is a single pass over the CSV)",
                file=sys.stderr,
            )
            return 2
        return _run_streamed_query(args)
    try:
        with ExitStack() as stack:
            if args.trace_jsonl:
                from repro.obs import trace

                # One JSON object per root span: the full span tree of
                # this invocation lands in the file (--explain-analyze
                # keeps its own temporary sink and prints the spans
                # instead).
                sink = stack.enter_context(trace.JSONLSink(args.trace_jsonl))
                stack.enter_context(trace.use_sink(sink))
            return _run_engine_query(args)
    except (ReproError, OSError) as error:
        return _fail(error)


def _run_engine_query(args: argparse.Namespace) -> int:
    """The engine-pipeline body of the ``query`` subcommand."""
    from repro.core.engine import AggregationEngine
    from repro.schema.serialize import load_pmapping
    from repro.storage.csv_io import load_table_csv

    pmapping = load_pmapping(args.mapping)
    table = load_table_csv(pmapping.source, args.data)
    engine = AggregationEngine(
        [table],
        pmapping,
        backend=args.backend,
        allow_exponential=args.allow_exponential,
        allow_sampling=args.samples is not None,
        max_workers=args.max_workers,
        timeout_ms=args.timeout_ms,
        max_worlds=args.max_worlds,
        degrade=args.degrade,
    )
    with engine:
        if args.explain:
            plan = engine.explain(
                args.query,
                args.mapping_semantics,
                args.aggregate_semantics,
            )
            for line in _render_plan(plan):
                print(line)
            return 0
        if args.explain_analyze:
            report = engine.explain_analyze(
                args.query,
                args.mapping_semantics,
                args.aggregate_semantics,
                repeat=args.repeat,
                samples=args.samples,
            )
            _print_explain_analyze(report)
            return 0
        if args.repeat > 1:
            # Prepare once, execute N times: demonstrates the pipeline's
            # plan reuse and reports the amortized per-execution cost.
            prepared = engine.prepare(args.query)
            watch = Stopwatch()
            with watch:
                for _ in range(args.repeat):
                    answer = prepared.answer(
                        args.mapping_semantics,
                        args.aggregate_semantics,
                        samples=args.samples,
                    )
            print(answer)
            print(
                f"{args.repeat} executions in {watch.elapsed:.4f}s "
                f"({watch.elapsed / args.repeat * 1e3:.3f} ms/execution, "
                "prepared once)"
            )
            return 0
        answer = engine.answer(
            args.query,
            args.mapping_semantics,
            args.aggregate_semantics,
            samples=args.samples,
        )
    print(answer)
    return 0


def _run_stats(args: argparse.Namespace) -> int:
    """The ``stats`` subcommand: Prometheus exposition of the metrics
    registry.

    With ``--query`` the metrics are populated first by answering it
    (over ``--data``/``--mapping``, or a synthetic workload like
    ``profile``); per-engine registries chain to the process-wide one, so
    everything the run recorded is visible.  ``--serve`` keeps the
    process alive behind a stdlib HTTP scrape endpoint instead of
    printing once.
    """
    from repro.exceptions import ReproError
    from repro.obs import export, metrics

    if (args.data is None) != (args.mapping is None):
        print(
            "error: --data and --mapping go together (omit both for a "
            "synthetic workload)",
            file=sys.stderr,
        )
        return 2
    try:
        if args.query is not None:
            from repro.core.engine import AggregationEngine

            if args.data is not None:
                from repro.schema.serialize import load_pmapping
                from repro.storage.csv_io import load_table_csv

                pmapping = load_pmapping(args.mapping)
                table = load_table_csv(pmapping.source, args.data)
            else:
                from repro.data import synthetic
                from repro.sql.parser import parse_query

                target = synthetic.mediated_relation(
                    parse_query(args.query).source.name
                )
                source = synthetic.source_relation(args.attributes)
                table = synthetic.generate_source_table(
                    args.tuples, args.attributes, seed=args.seed,
                    relation=source,
                )
                pmapping = synthetic.generate_pmapping(
                    source, args.mappings, seed=args.seed, target=target
                )
            with AggregationEngine(
                [table],
                pmapping,
                allow_exponential=args.allow_exponential,
                allow_sampling=args.samples is not None,
                max_workers=args.max_workers,
            ) as engine:
                for _ in range(args.repeat):
                    engine.answer(
                        args.query,
                        args.mapping_semantics,
                        args.aggregate_semantics,
                        samples=args.samples,
                    )
        registry = metrics.get_registry()
        if args.serve:
            server = export.MetricsServer(registry, port=args.port)
            print(f"serving metrics at {server.url}", file=sys.stderr)
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                pass
            return 0
        print(export.render_prometheus(registry), end="")
    except (ReproError, OSError) as error:
        return _fail(error)
    return 0


def _render_table(headers: list[str], rows: list[list[str]]) -> list[str]:
    """Aligned plain-text table (headers + rows, left-justified columns)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    def fmt(row: list[str]) -> str:
        return "  ".join(v.ljust(widths[i]) for i, v in enumerate(row)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines


def _run_recent(args: argparse.Namespace) -> int:
    """The ``recent`` subcommand: query-log records as a table (or JSON).

    With ``--file`` it reads a slow-query JSONL trail
    (``slow_query_path``); without one it answers a synthetic workload
    first and renders the engine's own ``recent_queries()`` buffer, so
    the record shape can be inspected with no files on disk.
    """
    import json
    import time as time_mod

    from repro.exceptions import ReproError

    try:
        if args.file is not None:
            records = []
            with open(args.file) as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        records.append(json.loads(line))
        else:
            from repro.core.engine import AggregationEngine
            from repro.data import synthetic
            from repro.sql.parser import parse_query

            target = synthetic.mediated_relation(
                parse_query(args.query).source.name
            )
            source = synthetic.source_relation(args.attributes)
            table = synthetic.generate_source_table(
                args.tuples, args.attributes, seed=args.seed, relation=source
            )
            pmapping = synthetic.generate_pmapping(
                source, args.mappings, seed=args.seed, target=target
            )
            with AggregationEngine([table], pmapping) as engine:
                for _ in range(args.repeat):
                    engine.answer(
                        args.query,
                        args.mapping_semantics,
                        args.aggregate_semantics,
                    )
                records = [r.to_dict() for r in engine.recent_queries()]
        if args.limit is not None:
            records = records[-args.limit:] if args.limit > 0 else []
    except (ReproError, OSError, ValueError) as error:
        return _fail(error)
    if args.json:
        print(json.dumps(records, indent=1))
        return 0
    if not records:
        print("no query records")
        return 0

    def cell(value, spec: str = "") -> str:
        if value is None:
            return "-"
        return format(value, spec) if spec else str(value)

    headers = [
        "time", "digest", "cell", "lane", "status", "ms", "rows",
        "est cost", "actual cost",
    ]
    rows = []
    for record in records:
        rows.append([
            time_mod.strftime(
                "%H:%M:%S", time_mod.localtime(record.get("ts", 0))
            ),
            cell(record.get("digest")),
            f"{record.get('mapping_semantics', '?')}/"
            f"{record.get('aggregate_semantics', '?')}",
            cell(record.get("lane")),
            cell(record.get("status")),
            cell(record.get("seconds", 0) * 1e3, ".3f"),
            cell(record.get("rows")),
            cell(record.get("est_cost"), ".4g"),
            cell(record.get("actual_cost"), ".4g"),
        ])
    for line in _render_table(headers, rows):
        print(line)
    return 0


def _run_feedback(args: argparse.Namespace) -> int:
    """The ``feedback`` subcommand: inspect or collect plan-feedback
    calibration.

    ``--file`` alone renders a previously-saved store;  ``--collect``
    answers a synthetic workload on a ``calibrate=True`` engine first
    (persisting to ``--file`` when given) and renders what it learned.
    """
    import json

    from repro.exceptions import ReproError

    try:
        if args.collect:
            from repro.core.engine import AggregationEngine
            from repro.data import synthetic
            from repro.sql.parser import parse_query

            target = synthetic.mediated_relation(
                parse_query(args.query).source.name
            )
            source = synthetic.source_relation(args.attributes)
            table = synthetic.generate_source_table(
                args.tuples, args.attributes, seed=args.seed, relation=source
            )
            pmapping = synthetic.generate_pmapping(
                source, args.mappings, seed=args.seed, target=target
            )
            engine = AggregationEngine(
                [table],
                pmapping,
                calibrate=True,
                feedback_path=args.file,
                max_workers=args.max_workers,
            )
            with engine:
                for _ in range(args.repeat):
                    engine.answer(
                        args.query,
                        args.mapping_semantics,
                        args.aggregate_semantics,
                    )
                snapshot = engine.feedback_snapshot()
            if args.file is not None:
                print(f"saved feedback to {args.file}", file=sys.stderr)
        elif args.file is not None:
            from repro.obs.feedback import PlanFeedback

            store = PlanFeedback()
            loaded = store.load(args.file)
            if loaded == 0:
                print(
                    f"error: no observations in {args.file}",
                    file=sys.stderr,
                )
                return 2
            snapshot = store.snapshot()
        else:
            print(
                "error: pass --file to inspect a saved store, or --collect "
                "to record a fresh workload",
                file=sys.stderr,
            )
            return 2
    except (ReproError, OSError, ValueError) as error:
        return _fail(error)
    if args.json:
        print(json.dumps(snapshot, indent=1))
        return 0
    if not snapshot:
        print("no feedback observations")
        return 0
    headers = ["cell|lane", "obs", "s/row", "s/unit", "fit a", "fit b"]
    rows = []
    for key, entry in snapshot.items():
        fit = entry.get("fit") or {}

        def num(value) -> str:
            return "-" if value is None else f"{value:.3g}"

        rows.append([
            key,
            str(entry["observations"]),
            num(entry.get("per_row_seconds")),
            num(entry.get("seconds_per_unit")),
            num(fit.get("intercept")),
            num(fit.get("per_row")),
        ])
    for line in _render_table(headers, rows):
        print(line)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # Forward ``bench`` before argparse sees the rest: REMAINDER will not
    # capture a leading option such as ``--list``.
    if argv and argv[0] == "bench":
        from repro.bench import harness

        return harness.main(list(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the tables and figures of 'Aggregate Query "
        "Answering under Uncertain Schema Mappings' (ICDE 2009).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("table3", help="Table III: six semantics of Q1")
    subparsers.add_parser("fig6", help="Figure 6: complexity matrix")
    _add_figure(subparsers, "fig7", "small eBay instances, all algorithms")
    _add_figure(subparsers, "fig8", "small synthetic, varying #mappings")
    _add_figure(subparsers, "fig9", "medium synthetic, PTIME algorithms")
    _add_figure(subparsers, "fig10", "varying #mappings, wide table")
    _add_figure(subparsers, "fig11", "large #tuples")
    _add_figure(subparsers, "fig12", "very large #tuples")
    subparsers.add_parser(
        "ablations", help="scalar-vs-vectorized, expected-COUNT, AVG-counter"
    )
    query_parser = subparsers.add_parser(
        "query", help="answer a query over a CSV + JSON p-mapping"
    )
    query_parser.add_argument("--data", required=True,
                              help="CSV file of the source relation")
    query_parser.add_argument("--mapping", required=True,
                              help="JSON p-mapping (repro.schema.serialize)")
    query_parser.add_argument("--query", required=True,
                              help="aggregate SQL over the target schema")
    query_parser.add_argument(
        "--mapping-semantics", default="by-table",
        choices=["by-table", "by-tuple"],
    )
    query_parser.add_argument(
        "--aggregate-semantics", default="distribution",
        choices=["range", "distribution", "expected-value"],
    )
    query_parser.add_argument("--allow-exponential", action="store_true")
    query_parser.add_argument("--samples", type=int, default=None,
                              help="use Monte-Carlo sampling with N samples")
    query_parser.add_argument("--backend", default="memory",
                              choices=["memory", "sqlite"])
    query_parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="prepare the query once and execute it N times, reporting the "
        "amortized per-execution time (exercises the prepared-plan cache)",
    )
    query_parser.add_argument(
        "--explain", action="store_true",
        help="print the execution plan (lane, Figure 6 complexity class, "
        "fallback chain) without executing the query",
    )
    query_parser.add_argument(
        "--explain-analyze", action="store_true",
        help="execute the query and print the plan with per-span timings "
        "and metric deltas (combine with --repeat N for cache behaviour)",
    )
    query_parser.add_argument(
        "--stream", action="store_true",
        help="single-pass streaming evaluation (by-tuple, flat queries; "
        "the CSV is never materialized, so it may exceed RAM)",
    )
    query_parser.add_argument(
        "--timeout-ms", type=float, default=None, metavar="MS",
        help="wall-clock deadline per execution; a query that overruns "
        "aborts with QueryTimeoutError (exit code 10) unless --degrade "
        "finds a cheaper lane",
    )
    query_parser.add_argument(
        "--max-worlds", type=int, default=None, metavar="N",
        help="cap on enumerated possible worlds (and sampling draws); "
        "exceeding it aborts with BudgetExceededError (exit code 11)",
    )
    query_parser.add_argument(
        "--degrade", action="store_true",
        help="on a guardrail breach, degrade to a cheaper lane (parallel -> "
        "streaming -> scalar; exponential -> sampling) instead of failing",
    )
    query_parser.add_argument(
        "--max-workers", type=int, default=None, metavar="N",
        help="shard flat PTIME by-tuple queries across N worker processes "
        "(answers are bit-for-bit equal to the sequential lanes; small "
        "inputs keep the sequential fast path)",
    )
    query_parser.add_argument(
        "--trace-jsonl", default=None, metavar="PATH",
        help="append this invocation's span trees (one JSON object per "
        "root span, including per-shard spans of a parallel run) to PATH",
    )
    profile_parser = subparsers.add_parser(
        "profile",
        help="flat per-span profile (calls, cumulative/self time, p50/p95, "
        "critical path) of a query execution",
    )
    profile_parser.add_argument("--query", required=True,
                                help="aggregate SQL over the target schema")
    profile_parser.add_argument(
        "--mapping-semantics", "--msem", dest="mapping_semantics",
        default="by-table", choices=["by-table", "by-tuple"],
    )
    profile_parser.add_argument(
        "--aggregate-semantics", "--asem", dest="aggregate_semantics",
        default="distribution",
        choices=["range", "distribution", "expected-value"],
    )
    profile_parser.add_argument(
        "--repeat", type=int, default=3, metavar="N",
        help="execute the query N times and aggregate all runs (default: 3)",
    )
    profile_parser.add_argument(
        "--json", action="store_true",
        help="emit the profile as JSON instead of the text table",
    )
    profile_parser.add_argument("--data", default=None,
                                help="CSV file of the source relation")
    profile_parser.add_argument(
        "--mapping", default=None,
        help="JSON p-mapping (omit both --data and --mapping to profile "
        "over a generated synthetic workload)",
    )
    profile_parser.add_argument(
        "--tuples", type=int, default=500,
        help="synthetic workload: source table size (default: 500)",
    )
    profile_parser.add_argument(
        "--attributes", type=int, default=8,
        help="synthetic workload: source attribute count (default: 8)",
    )
    profile_parser.add_argument(
        "--mappings", type=int, default=5,
        help="synthetic workload: candidate mapping count (default: 5)",
    )
    profile_parser.add_argument("--seed", type=int, default=0)
    profile_parser.add_argument("--allow-exponential", action="store_true")
    profile_parser.add_argument("--samples", type=int, default=None,
                                help="use Monte-Carlo sampling with N samples")
    bench_parser = subparsers.add_parser(
        "bench",
        help="run a registered continuous-benchmark suite "
        "(repro-bench bench --list; see repro.bench.harness)",
    )
    bench_parser.add_argument(
        "harness_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to repro.bench.harness "
        "(--suite NAME, --list, --warmup, --repeats, --case, --json, "
        "--update-baseline)",
    )
    stats_parser = subparsers.add_parser(
        "stats",
        help="Prometheus text exposition of the metrics registry "
        "(--serve starts a stdlib HTTP scrape endpoint)",
    )
    stats_parser.add_argument(
        "--query", default=None,
        help="populate the metrics by answering this query first "
        "(over --data/--mapping, or a synthetic workload)",
    )
    stats_parser.add_argument(
        "--mapping-semantics", "--msem", dest="mapping_semantics",
        default="by-tuple", choices=["by-table", "by-tuple"],
    )
    stats_parser.add_argument(
        "--aggregate-semantics", "--asem", dest="aggregate_semantics",
        default="range",
        choices=["range", "distribution", "expected-value"],
    )
    stats_parser.add_argument("--data", default=None,
                              help="CSV file of the source relation")
    stats_parser.add_argument(
        "--mapping", default=None,
        help="JSON p-mapping (omit both --data and --mapping for a "
        "synthetic workload)",
    )
    stats_parser.add_argument("--repeat", type=int, default=1, metavar="N")
    stats_parser.add_argument("--tuples", type=int, default=500)
    stats_parser.add_argument("--attributes", type=int, default=8)
    stats_parser.add_argument("--mappings", type=int, default=5)
    stats_parser.add_argument("--seed", type=int, default=0)
    stats_parser.add_argument("--allow-exponential", action="store_true")
    stats_parser.add_argument("--samples", type=int, default=None)
    stats_parser.add_argument("--max-workers", type=int, default=None)
    stats_parser.add_argument(
        "--serve", action="store_true",
        help="serve the exposition at /metrics instead of printing once",
    )
    stats_parser.add_argument(
        "--port", type=int, default=0, metavar="P",
        help="TCP port for --serve (default: an ephemeral port, printed "
        "on startup)",
    )
    recent_parser = subparsers.add_parser(
        "recent",
        help="render structured query-log records (a slow-query JSONL "
        "file, or a fresh synthetic run) as an aligned table or JSON",
    )
    recent_parser.add_argument(
        "--file", default=None, metavar="PATH",
        help="slow-query JSONL trail to read (engine slow_query_path); "
        "omit to answer a synthetic workload and show its records",
    )
    recent_parser.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="show only the last N records",
    )
    recent_parser.add_argument(
        "--json", action="store_true",
        help="emit the records as JSON instead of the table",
    )
    recent_parser.add_argument(
        "--query", default="SELECT COUNT(*) FROM T",
        help="synthetic-workload query (without --file)",
    )
    recent_parser.add_argument(
        "--mapping-semantics", "--msem", dest="mapping_semantics",
        default="by-tuple", choices=["by-table", "by-tuple"],
    )
    recent_parser.add_argument(
        "--aggregate-semantics", "--asem", dest="aggregate_semantics",
        default="range",
        choices=["range", "distribution", "expected-value"],
    )
    recent_parser.add_argument("--repeat", type=int, default=3, metavar="N")
    recent_parser.add_argument("--tuples", type=int, default=500)
    recent_parser.add_argument("--attributes", type=int, default=8)
    recent_parser.add_argument("--mappings", type=int, default=5)
    recent_parser.add_argument("--seed", type=int, default=0)
    feedback_parser = subparsers.add_parser(
        "feedback",
        help="inspect (or, with --collect, record) the cost-model "
        "calibration store",
    )
    feedback_parser.add_argument(
        "--file", default=None, metavar="PATH",
        help="feedback JSON store to inspect (or to save --collect into)",
    )
    feedback_parser.add_argument(
        "--collect", action="store_true",
        help="answer a synthetic workload on a calibrate=True engine and "
        "render what it learned",
    )
    feedback_parser.add_argument(
        "--json", action="store_true",
        help="emit the calibration snapshot as JSON instead of the table",
    )
    feedback_parser.add_argument(
        "--query", default="SELECT COUNT(*) FROM T",
        help="synthetic-workload query (with --collect)",
    )
    feedback_parser.add_argument(
        "--mapping-semantics", "--msem", dest="mapping_semantics",
        default="by-tuple", choices=["by-table", "by-tuple"],
    )
    feedback_parser.add_argument(
        "--aggregate-semantics", "--asem", dest="aggregate_semantics",
        default="range",
        choices=["range", "distribution", "expected-value"],
    )
    feedback_parser.add_argument("--repeat", type=int, default=5, metavar="N")
    feedback_parser.add_argument("--tuples", type=int, default=500)
    feedback_parser.add_argument("--attributes", type=int, default=8)
    feedback_parser.add_argument("--mappings", type=int, default=5)
    feedback_parser.add_argument("--seed", type=int, default=0)
    feedback_parser.add_argument("--max-workers", type=int, default=None)
    match_parser = subparsers.add_parser(
        "match",
        help="match two CSVs automatically and emit a JSON p-mapping",
    )
    match_parser.add_argument("--source", required=True,
                              help="CSV of the source relation")
    match_parser.add_argument("--target", required=True,
                              help="CSV of the target (mediated) relation")
    match_parser.add_argument("--output", required=True,
                              help="path for the JSON p-mapping")
    match_parser.add_argument("--source-name", default="SOURCE")
    match_parser.add_argument("--target-name", default="TARGET")
    match_parser.add_argument("--top-k", type=int, default=5)
    match_parser.add_argument("--threshold", type=float, default=0.35)
    match_parser.add_argument("--temperature", type=float, default=0.1)
    match_parser.add_argument(
        "--known", action="append", default=[], metavar="SRC=TGT",
        help="pin a correspondence (repeatable), e.g. --known ID=propertyID",
    )
    serve_parser = subparsers.add_parser(
        "serve", help="run the asyncio multi-tenant query service"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8080,
        help="TCP port (0 picks an ephemeral one; default 8080)",
    )
    serve_parser.add_argument(
        "--max-concurrency", type=int, default=8,
        help="queries executing at once (default 8)",
    )
    serve_parser.add_argument(
        "--queue-depth", type=int, default=16,
        help="queries allowed to wait for a slot before shedding (default 16)",
    )
    serve_parser.add_argument(
        "--queue-timeout-ms", type=float, default=None,
        help="longest a query may queue before shedding (default: unbounded)",
    )
    serve_parser.add_argument(
        "--default-timeout-ms", type=float, default=None,
        help="per-query deadline when the request carries none",
    )
    serve_parser.add_argument(
        "--drain-timeout-ms", type=float, default=10000.0,
        help="SIGTERM drain deadline for in-flight queries (default 10000)",
    )
    serve_parser.add_argument(
        "--dataset", action="append", default=[],
        metavar="NAME=DATA.csv:MAPPING.json",
        help="serve a CSV + JSON p-mapping dataset (repeatable)",
    )
    serve_parser.add_argument(
        "--synthetic", action="append", default=[],
        metavar="NAME[:TUPLES[:ATTRS[:MAPPINGS]]]",
        help="serve a synthetic dataset (repeatable; default 'demo' when "
        "no dataset flags are given)",
    )
    serve_parser.add_argument(
        "--tenant", action="append", default=[],
        metavar="NAME:key=value,...",
        help="standing tenant budget (keys: timeout_ms, max_rows, "
        "max_worlds, max_support, samples); repeatable",
    )
    serve_parser.add_argument("--seed", type=int, default=0)
    all_parser = subparsers.add_parser("all", help="every experiment in order")
    all_parser.add_argument("--full", action="store_true")
    all_parser.add_argument("--seed", type=int, default=0)
    all_parser.add_argument("--timeout", type=float, default=None)

    args = parser.parse_args(argv)
    passed = True
    if args.command == "query":
        return _run_query(args)
    if args.command == "profile":
        return _run_profile(args)
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "recent":
        return _run_recent(args)
    if args.command == "feedback":
        return _run_feedback(args)
    if args.command == "match":
        return _run_match(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "table3":
        passed = experiments.table3()
    elif args.command == "ablations":
        passed = experiments.ablation_vectorized()
        passed = experiments.ablation_expected_count() and passed
        passed = experiments.ablation_avg_counter_method() and passed
    elif args.command == "all":
        passed = experiments.table3()
        passed = experiments.figure6() and passed
        for name in ("fig7", "fig8", "fig9", "fig10", "fig11", "fig12"):
            passed = _run_figure(name, args) and passed
        passed = experiments.ablation_vectorized() and passed
        passed = experiments.ablation_expected_count() and passed
        passed = experiments.ablation_avg_counter_method() and passed
    else:
        passed = _run_figure(args.command, args)
    print()
    print("ALL SHAPE CHECKS PASSED" if passed else "SOME SHAPE CHECKS FAILED")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
