"""SQLite-backed relational engine for the by-table execution path.

The paper's prototype ran by-table queries on PostgreSQL and observed that
"the greater scalability of the by-table algorithms ... is in large part due
to the fact that [they are] taking advantage of the optimizations implemented
by the DBMS".  This module is our substitute DBMS: the stdlib ``sqlite3``
engine, with tables materialized from :class:`~repro.storage.table.Table`
instances.

DATE columns are stored as ISO-8601 TEXT, which makes SQL comparison
operators order dates correctly without custom collations.
"""

from __future__ import annotations

import datetime
import random
import sqlite3
import time
from collections.abc import Iterable, Sequence

from repro.exceptions import StorageError
from repro.obs import metrics
from repro.schema.model import Attribute, AttributeType, Relation
from repro.storage.table import Table
from repro.testing import faults

#: Retry policy for transient SQLite errors ("database is locked"/"busy"):
#: up to :data:`MAX_RETRIES` re-attempts with capped, jittered exponential
#: backoff starting at :data:`RETRY_BASE_DELAY` seconds.
MAX_RETRIES = 4
RETRY_BASE_DELAY = 0.005
RETRY_MAX_DELAY = 0.1


def _is_transient(error: sqlite3.Error) -> bool:
    """True for lock/busy contention, which a short retry usually clears."""
    if not isinstance(error, sqlite3.OperationalError):
        return False
    message = str(error).lower()
    return "locked" in message or "busy" in message


def _retry_delay(attempt: int, rng=random.random) -> float:
    """Capped exponential backoff with full jitter for retry ``attempt``."""
    ceiling = min(RETRY_MAX_DELAY, RETRY_BASE_DELAY * (2 ** attempt))
    return ceiling * rng()

_SQLITE_TYPE = {
    AttributeType.INT: "INTEGER",
    AttributeType.REAL: "REAL",
    AttributeType.TEXT: "TEXT",
    AttributeType.DATE: "TEXT",
}


def _to_sqlite_value(attr: Attribute, value: object) -> object:
    if value is None:
        return None
    if attr.type is AttributeType.DATE:
        assert isinstance(value, datetime.date)
        return value.isoformat()
    return value


def _from_sqlite_value(attr: Attribute, value: object) -> object:
    if value is None:
        return None
    if attr.type is AttributeType.DATE:
        return datetime.date.fromisoformat(str(value))
    return value


def _quote_identifier(name: str) -> str:
    """Quote an identifier for SQLite, escaping embedded quotes."""
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


class SQLiteBackend:
    """An in-process SQLite database holding materialized source tables.

    Examples
    --------
    >>> backend = SQLiteBackend()
    >>> backend.materialize(my_table)                     # doctest: +SKIP
    >>> backend.query("SELECT COUNT(*) FROM S1")          # doctest: +SKIP
    [(4,)]
    """

    def __init__(self, path: str = ":memory:") -> None:
        self._connection = sqlite3.connect(path)
        self._relations: dict[str, Relation] = {}

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- schema / data -----------------------------------------------------

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Names of all materialized relations."""
        return tuple(self._relations)

    def relation(self, name: str) -> Relation:
        """The schema of a materialized relation."""
        try:
            return self._relations[name]
        except KeyError:
            raise StorageError(f"no materialized relation named {name!r}") from None

    def materialize(self, table: Table, *, replace: bool = False) -> None:
        """Create a SQLite table for ``table`` and bulk-load its rows."""
        relation = table.relation
        if relation.name in self._relations and not replace:
            raise StorageError(
                f"relation {relation.name!r} is already materialized; "
                "pass replace=True to overwrite"
            )
        quoted = _quote_identifier(relation.name)
        columns = ", ".join(
            f"{_quote_identifier(attr.name)} {_SQLITE_TYPE[attr.type]}"
            for attr in relation
        )
        cursor = self._connection.cursor()
        cursor.execute(f"DROP TABLE IF EXISTS {quoted}")
        cursor.execute(f"CREATE TABLE {quoted} ({columns})")
        placeholders = ", ".join("?" for _ in relation.attributes)
        insert_sql = f"INSERT INTO {quoted} VALUES ({placeholders})"
        cursor.executemany(
            insert_sql,
            (
                tuple(
                    _to_sqlite_value(attr, value)
                    for attr, value in zip(relation.attributes, values)
                )
                for values in table.rows
            ),
        )
        self._connection.commit()
        self._relations[relation.name] = relation

    def insert_rows(self, relation_name: str, rows: Iterable[Sequence]) -> None:
        """Append already-typed rows to a materialized relation."""
        relation = self.relation(relation_name)
        placeholders = ", ".join("?" for _ in relation.attributes)
        sql = (
            f"INSERT INTO {_quote_identifier(relation.name)} "
            f"VALUES ({placeholders})"
        )
        self._connection.cursor().executemany(
            sql,
            (
                tuple(
                    _to_sqlite_value(attr, value)
                    for attr, value in zip(relation.attributes, value_row)
                )
                for value_row in rows
            ),
        )
        self._connection.commit()

    def fetch_table(self, relation_name: str) -> Table:
        """Read a materialized relation back into an in-memory Table."""
        relation = self.relation(relation_name)
        cursor = self._connection.execute(
            f"SELECT * FROM {_quote_identifier(relation.name)}"
        )
        table = Table(relation)
        for raw in cursor:
            table.append(
                tuple(
                    _from_sqlite_value(attr, value)
                    for attr, value in zip(relation.attributes, raw)
                )
            )
        return table

    # -- querying ----------------------------------------------------------

    def query(self, sql: str, parameters: Sequence = ()) -> list[tuple]:
        """Run raw SQL and return all result rows.

        The by-table algorithm renders each reformulated query to SQLite SQL
        (see :meth:`repro.sql.ast.AggregateQuery.to_sql`) and executes it
        here, one query per candidate mapping — exactly the paper's Figure 1.
        """
        metrics.inc("sqlite.queries")
        cursor = self._execute_with_retry(sql, tuple(parameters))
        return cursor.fetchall()

    def _execute_with_retry(self, sql: str, parameters: tuple):
        """Execute, retrying transient lock/busy errors with backoff.

        Non-transient SQLite errors (syntax, missing table, type mismatch)
        raise :class:`~repro.exceptions.StorageError` immediately; the
        transient ones retry up to :data:`MAX_RETRIES` times with capped,
        jittered exponential backoff, counting ``sqlite.retries`` so
        contention is visible in EXPLAIN ANALYZE.
        """
        attempt = 0
        while True:
            try:
                faults.maybe_fire("sqlite.cursor")
                return self._connection.execute(sql, parameters)
            except sqlite3.Error as exc:
                if _is_transient(exc) and attempt < MAX_RETRIES:
                    metrics.inc("sqlite.retries")
                    time.sleep(_retry_delay(attempt))
                    attempt += 1
                    continue
                if _is_transient(exc):
                    metrics.inc("sqlite.retries.exhausted")
                    raise StorageError(
                        f"SQLite stayed locked after {MAX_RETRIES} retries: "
                        f"{exc}\n  SQL: {sql}"
                    ) from exc
                raise StorageError(
                    f"SQLite rejected query: {exc}\n  SQL: {sql}"
                ) from exc

    def scalar(self, sql: str, parameters: Sequence = ()) -> object:
        """Run raw SQL expected to return a single value."""
        rows = self.query(sql, parameters)
        if len(rows) != 1 or len(rows[0]) != 1:
            raise StorageError(
                f"expected a single scalar from query, got {len(rows)} rows"
            )
        return rows[0][0]
