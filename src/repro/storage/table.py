"""In-memory table: the substrate the by-tuple algorithms iterate over.

A :class:`Table` couples a :class:`~repro.schema.model.Relation` schema with
a list of tuples.  Values are validated and coerced to the attribute types at
insertion, so downstream algorithms can rely on homogeneous columns.

Rows are plain tuples (cheap, hashable); :class:`Row` is a lightweight
name-based view over one used where readability matters (condition
evaluation, examples).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import StorageError
from repro.schema.model import Relation


class Row:
    """A read-only, name-addressable view over one tuple of a table.

    Examples
    --------
    >>> row["price"]          # doctest: +SKIP
    100000.0
    """

    __slots__ = ("_relation", "_values")

    def __init__(self, relation: Relation, values: tuple) -> None:
        self._relation = relation
        self._values = values

    def __getitem__(self, attribute: str) -> object:
        return self._values[self._relation.index_of(attribute)]

    def get(self, attribute: str, default: object = None) -> object:
        """Value of ``attribute``, or ``default`` when absent."""
        if attribute in self._relation:
            return self[attribute]
        return default

    def as_dict(self) -> dict[str, object]:
        """The row as an attribute-name -> value dictionary."""
        return dict(zip(self._relation.attribute_names, self._values))

    def as_tuple(self) -> tuple:
        """The underlying value tuple."""
        return self._values

    def __iter__(self) -> Iterator[object]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._values == other._values
        if isinstance(other, tuple):
            return self._values == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{name}={value!r}"
            for name, value in zip(self._relation.attribute_names, self._values)
        )
        return f"Row({pairs})"


class Table:
    """A typed, in-memory relation instance.

    Parameters
    ----------
    relation:
        The schema of the table.
    rows:
        Initial rows; each row may be a sequence (declaration order) or a
        mapping from attribute name to value.

    Examples
    --------
    >>> from repro.schema.model import Attribute, AttributeType, Relation
    >>> rel = Relation("S", [Attribute("a", AttributeType.INT),
    ...                      Attribute("b", AttributeType.REAL)])
    >>> t = Table(rel, [(1, 2.0), {"a": 3, "b": 4.5}])
    >>> len(t)
    2
    >>> t.column("b")
    (2.0, 4.5)
    """

    __slots__ = ("relation", "_rows")

    def __init__(
        self,
        relation: Relation,
        rows: Iterable[Sequence | Mapping[str, object]] = (),
    ) -> None:
        self.relation = relation
        self._rows: list[tuple] = []
        self.extend(rows)

    @classmethod
    def from_prepared_rows(
        cls, relation: Relation, rows: list[tuple]
    ) -> "Table":
        """Wrap already-typed row tuples without re-validating each value.

        Intended for library internals that build many short-lived tables
        from values that were *already* coerced by another Table (the naive
        possible-worlds enumerator materializes one table per mapping
        sequence).  Callers owning untrusted values must use the normal
        constructor.
        """
        table = cls.__new__(cls)
        table.relation = relation
        table._rows = rows
        return table

    def _coerce_row(self, row: Sequence | Mapping[str, object]) -> tuple:
        if isinstance(row, Mapping):
            unknown = set(row) - set(self.relation.attribute_names)
            if unknown:
                raise StorageError(
                    f"row has values for unknown attributes {sorted(unknown)} "
                    f"of relation {self.relation.name!r}"
                )
            values = [row.get(attr.name) for attr in self.relation]
        else:
            values = list(row)
            if len(values) != len(self.relation):
                raise StorageError(
                    f"row has {len(values)} values but relation "
                    f"{self.relation.name!r} has {len(self.relation)} attributes"
                )
        return tuple(
            attr.type.coerce(value)
            for attr, value in zip(self.relation, values)
        )

    # -- mutation ----------------------------------------------------------

    def append(self, row: Sequence | Mapping[str, object]) -> None:
        """Validate, coerce, and append one row."""
        self._rows.append(self._coerce_row(row))

    def extend(self, rows: Iterable[Sequence | Mapping[str, object]]) -> None:
        """Append many rows."""
        for row in rows:
            self.append(row)

    # -- access ------------------------------------------------------------

    @property
    def rows(self) -> tuple[tuple, ...]:
        """All rows as value tuples (a copy; mutation-safe)."""
        return tuple(self._rows)

    def row(self, index: int) -> Row:
        """A name-addressable view of the row at ``index``."""
        return Row(self.relation, self._rows[index])

    def iter_rows(self) -> Iterator[Row]:
        """Iterate over :class:`Row` views."""
        for values in self._rows:
            yield Row(self.relation, values)

    def column(self, attribute: str) -> tuple:
        """All values of one attribute, in row order."""
        index = self.relation.index_of(attribute)
        return tuple(values[index] for values in self._rows)

    def value_at(self, row_index: int, attribute: str) -> object:
        """The value of ``attribute`` in row ``row_index``."""
        return self._rows[row_index][self.relation.index_of(attribute)]

    def distinct(self, attribute: str) -> tuple:
        """Distinct values of one attribute, in first-seen order."""
        seen: dict[object, None] = {}
        for value in self.column(attribute):
            seen.setdefault(value, None)
        return tuple(seen)

    def select(self, predicate) -> "Table":
        """A new table with the rows for which ``predicate(Row)`` is true."""
        out = Table(self.relation)
        out._rows = [
            values for values in self._rows
            if predicate(Row(self.relation, values))
        ]
        return out

    def head(self, n: int) -> "Table":
        """A new table containing the first ``n`` rows."""
        out = Table(self.relation)
        out._rows = self._rows[:n]
        return out

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return self.iter_rows()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.relation == other.relation and self._rows == other._rows

    def __repr__(self) -> str:
        return f"Table({self.relation.name!r}, {len(self._rows)} rows)"

    def pretty(self, limit: int = 20) -> str:
        """A fixed-width rendering of up to ``limit`` rows (for examples)."""
        names = self.relation.attribute_names
        shown = [tuple(str(v) for v in values) for values in self._rows[:limit]]
        widths = [
            max(len(name), *(len(row[i]) for row in shown)) if shown else len(name)
            for i, name in enumerate(names)
        ]
        header = "  ".join(name.ljust(w) for name, w in zip(names, widths))
        lines = [header, "  ".join("-" * w for w in widths)]
        lines.extend(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in shown
        )
        if len(self._rows) > limit:
            lines.append(f"... ({len(self._rows) - limit} more rows)")
        return "\n".join(lines)
