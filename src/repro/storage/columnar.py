"""Columnar storage: typed column arrays with explicit null masks.

The by-tuple algorithms are per-tuple folds; evaluating them over
row-major Python tuples pays interpreter overhead per (tuple, mapping)
pair.  :class:`ColumnarTable` is the storage-layer answer: a build-once,
immutable column-major snapshot of a :class:`~repro.storage.table.Table`
that every fast lane (the numpy kernels of :mod:`repro.core.vectorized`,
the array-backed prepared queries of :mod:`repro.core.common`, the
column-slice shards of :mod:`repro.core.parallel`) consumes.

Conversion contract (from ``storage/table.Table``)
--------------------------------------------------

One column array plus one optional null mask per attribute:

========= ======================= =========================== ===========
SQL type  numpy backend           pure-Python backend         NULL fill
========= ======================= =========================== ===========
INT       ``float64``             ``array('d')``              ``0.0``
REAL      ``float64``             ``array('d')``              ``0.0``
DATE      ``int64`` ordinals      ``array('q')``              ``0``
TEXT      unicode (``np.str_``)   ``list[str]``               ``""``
========= ======================= =========================== ===========

NULL cells are *only* distinguishable through the null mask
(:meth:`ColumnarTable.nulls`): the fill values above are dummies that keep
the arrays dense, and consumers must mask them out.  ``nulls(name)``
returns ``None`` for a column with no NULLs, so the common all-certain
case costs nothing.  INT columns ride in float64, which is exact for
integers up to 2**53; a column holding a larger magnitude is flagged
(:meth:`ColumnarTable.exact`) and the fast lanes decline it, keeping the
scalar lane the exact reference.

The numpy import is guarded: without numpy (``pip install repro[fast]``
declares the optional dependency) the pure-Python backend — stdlib
``array`` for numerics/dates, a plain list for text — keeps the layer,
its null masks, and its conversion contract available, and the engine
degrades gracefully to the scalar lane.

Build-once semantics: a :class:`ColumnarTable` is a snapshot of the rows
at construction time and is never mutated afterwards; mutating the source
:class:`~repro.storage.table.Table` requires a fresh build (the engine's
columnar cache drops its entries on ``invalidate()``/``close()``).
"""

from __future__ import annotations

import datetime
from array import array

from repro.exceptions import StorageError
from repro.schema.model import AttributeType, Relation
from repro.storage.table import Table

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

#: True when numpy is importable; the planner and the prepared-query
#: materializer consult this before routing work at the columnar layer.
HAVE_NUMPY = np is not None

__all__ = ["ColumnarError", "ColumnarTable", "HAVE_NUMPY"]


class ColumnarError(StorageError):
    """The columnar layer cannot serve a request (unknown column, or an
    operation that needs the numpy backend on a pure-Python build)."""


def _numeric_store(raw, row_count: int, use_numpy: bool):
    """(values, nulls) for an INT/REAL column; nulls is None when clean."""
    has_nulls = any(value is None for value in raw)
    filled = (
        [0.0 if value is None else float(value) for value in raw]
        if has_nulls
        else raw
    )
    if use_numpy:
        values = np.asarray(filled, dtype=np.float64)
        nulls = (
            np.fromiter(
                (value is None for value in raw), dtype=bool, count=row_count
            )
            if has_nulls
            else None
        )
        return values, nulls
    values = array("d", (float(value) for value in filled))
    nulls = [value is None for value in raw] if has_nulls else None
    return values, nulls


def _date_store(raw, row_count: int, use_numpy: bool):
    """(values, nulls) for a DATE column as proleptic-Gregorian ordinals."""
    has_nulls = any(value is None for value in raw)
    ordinals = [0 if value is None else value.toordinal() for value in raw]
    if use_numpy:
        values = np.asarray(ordinals, dtype=np.int64)
        nulls = (
            np.fromiter(
                (value is None for value in raw), dtype=bool, count=row_count
            )
            if has_nulls
            else None
        )
        return values, nulls
    return array("q", ordinals), (
        [value is None for value in raw] if has_nulls else None
    )


def _text_store(raw, row_count: int, use_numpy: bool):
    """(values, nulls) for a TEXT column (empty-string dummy for NULL)."""
    has_nulls = any(value is None for value in raw)
    filled = ["" if value is None else str(value) for value in raw]
    if use_numpy:
        values = np.asarray(filled, dtype=np.str_)
        nulls = (
            np.fromiter(
                (value is None for value in raw), dtype=bool, count=row_count
            )
            if has_nulls
            else None
        )
        return values, nulls
    return filled, ([value is None for value in raw] if has_nulls else None)


class ColumnarTable:
    """A build-once column-major snapshot of one relation instance.

    Parameters
    ----------
    table:
        The row-major source.  Cell values are assumed coerced to the
        relation's attribute types (``Table`` guarantees this).
    backend:
        ``"auto"`` (default) uses numpy when importable, else the
        pure-Python stores; ``"python"`` forces the stdlib fallback (used
        by tests to exercise the no-numpy path with numpy installed).

    Instances are picklable (column slices cross the parallel lane's
    process boundary) and immutable by convention: no method mutates the
    arrays after construction.
    """

    __slots__ = (
        "relation",
        "row_count",
        "backend",
        "_columns",
        "_nulls",
        "_inexact",
    )

    def __init__(self, table: Table, *, backend: str = "auto") -> None:
        self._build(
            table.relation,
            {
                attribute.name: table.column(attribute.name)
                for attribute in table.relation
            },
            len(table),
            backend,
        )

    @classmethod
    def from_rows(
        cls, relation: Relation, rows: list[tuple], *, backend: str = "auto"
    ) -> "ColumnarTable":
        """Build directly from raw row tuples (same contract as a Table)."""
        instance = object.__new__(cls)
        instance._build(
            relation,
            {
                attribute.name: tuple(values[index] for values in rows)
                for index, attribute in enumerate(relation)
            },
            len(rows),
            backend,
        )
        return instance

    def _build(
        self,
        relation: Relation,
        raw_columns: dict[str, tuple],
        row_count: int,
        backend: str,
    ) -> None:
        if backend not in ("auto", "python"):
            raise ColumnarError(
                f"unknown columnar backend {backend!r} "
                "(choices: 'auto', 'python')"
            )
        use_numpy = backend == "auto" and HAVE_NUMPY
        self.relation = relation
        self.row_count = row_count
        self.backend = "numpy" if use_numpy else "python"
        self._columns: dict[str, object] = {}
        self._nulls: dict[str, object] = {}
        self._inexact: frozenset[str] = frozenset()
        inexact = set()
        for attribute in relation:
            raw = raw_columns[attribute.name]
            if attribute.type in (AttributeType.INT, AttributeType.REAL):
                if attribute.type is AttributeType.INT and any(
                    value is not None and not -(2**53) <= value <= 2**53
                    for value in raw
                ):
                    inexact.add(attribute.name)
                values, nulls = _numeric_store(raw, row_count, use_numpy)
            elif attribute.type is AttributeType.DATE:
                values, nulls = _date_store(raw, row_count, use_numpy)
            else:
                values, nulls = _text_store(raw, row_count, use_numpy)
            self._columns[attribute.name] = values
            if nulls is not None:
                self._nulls[attribute.name] = nulls
        self._inexact = frozenset(inexact)

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return self.row_count

    def column(self, name: str):
        """The dense array backing one column (dummy-filled at NULLs)."""
        try:
            return self._columns[name]
        except KeyError:
            raise ColumnarError(
                f"relation {self.relation.name!r} has no column {name!r}"
            ) from None

    def nulls(self, name: str):
        """The column's boolean null mask, or ``None`` when NULL-free."""
        if name not in self._columns:
            raise ColumnarError(
                f"relation {self.relation.name!r} has no column {name!r}"
            )
        return self._nulls.get(name)

    def has_nulls(self, name: str) -> bool:
        """True when the column contains at least one NULL."""
        return self.nulls(name) is not None

    def exact(self, name: str) -> bool:
        """True when the column's array holds every value exactly.

        False only for an INT column with a magnitude beyond 2**53 (the
        float64 integer-exactness limit); consumers needing exact
        arithmetic must decline such a column to the scalar lane.
        """
        if name not in self._columns:
            raise ColumnarError(
                f"relation {self.relation.name!r} has no column {name!r}"
            )
        return name not in self._inexact

    def python_value(self, column_name: str, value: object) -> object:
        """Convert one array cell back to the column's Python type."""
        attribute = self.relation.attribute(column_name)
        if attribute.type is AttributeType.INT:
            return int(value)
        if attribute.type is AttributeType.REAL:
            return float(value)
        if attribute.type is AttributeType.DATE:
            return datetime.date.fromordinal(int(value))
        return str(value)

    # -- derived views -----------------------------------------------------

    def _derived(self, columns, nulls, row_count: int) -> "ColumnarTable":
        view = object.__new__(ColumnarTable)
        view.relation = self.relation
        view.row_count = row_count
        view.backend = self.backend
        view._columns = columns
        view._nulls = nulls
        view._inexact = self._inexact
        return view

    def subset(self, mask) -> "ColumnarTable":
        """The rows selected by a boolean mask (numpy backend only)."""
        if self.backend != "numpy":
            raise ColumnarError(
                "boolean-mask subsets require the numpy backend"
            )
        return self._derived(
            {name: column[mask] for name, column in self._columns.items()},
            {name: nulls[mask] for name, nulls in self._nulls.items()},
            int(mask.sum()),
        )

    def slice_rows(self, start: int, stop: int) -> "ColumnarTable":
        """Rows ``[start, stop)`` as a zero-copy view (both backends).

        On the numpy backend the sliced arrays are views over the parent's
        buffers — the parallel lane's shards share storage with the cached
        build (a shard that crosses a process boundary pickles only its
        slice).
        """
        return self._derived(
            {
                name: column[start:stop]
                for name, column in self._columns.items()
            },
            {name: nulls[start:stop] for name, nulls in self._nulls.items()},
            max(0, min(stop, self.row_count) - max(start, 0)),
        )

    # -- pickling (slots) --------------------------------------------------

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            object.__setattr__(self, slot, value)

    def __repr__(self) -> str:
        return (
            f"ColumnarTable({self.relation.name!r}, rows={self.row_count}, "
            f"backend={self.backend!r})"
        )
