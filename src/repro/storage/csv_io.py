"""CSV import/export for :class:`~repro.storage.table.Table`.

The experiment harness persists generated workloads so runs are repeatable;
these helpers are the only place the library touches the filesystem.
:func:`iter_csv_rows` additionally streams typed rows without materializing
a table — the input to :mod:`repro.core.streaming`.
"""

from __future__ import annotations

import csv
import datetime
from collections.abc import Iterator
from pathlib import Path

from repro.exceptions import StorageError
from repro.schema.model import Attribute, AttributeType, Relation
from repro.storage.table import Table


def save_table_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` as CSV with a header row.

    DATE values are written as ISO-8601 strings; ``None`` becomes the empty
    string.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.relation.attribute_names)
        for values in table.rows:
            writer.writerow(
                "" if value is None else (
                    value.isoformat()
                    if isinstance(value, datetime.date)
                    else value
                )
                for value in values
            )


def infer_relation(
    name: str, path: str | Path, *, sample_rows: int = 200
) -> Relation:
    """Infer a relation schema from a CSV's header and value shapes.

    Each column gets the narrowest type that accepts all sampled non-empty
    values, in the order INT, REAL, DATE, TEXT.  Empty fields are NULLs and
    constrain nothing; a column with no values at all defaults to TEXT.

    This powers ``repro-bench match`` on plain CSV exports; for full
    control, construct the :class:`~repro.schema.model.Relation` explicitly
    or ship it in a serialized p-mapping (:mod:`repro.schema.serialize`).
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError(f"{path} is empty; expected a header row") from None
        if not header or any(not column for column in header):
            raise StorageError(f"{path} has a malformed header row: {header}")
        samples: list[list[str]] = [[] for _ in header]
        for raw in reader:
            if len(raw) != len(header):
                raise StorageError(
                    f"{path}: row width {len(raw)} does not match header "
                    f"width {len(header)}"
                )
            for column, field in zip(samples, raw):
                if field != "" and len(column) < sample_rows:
                    column.append(field)
            if all(len(column) >= sample_rows for column in samples):
                break
    attributes = [
        Attribute(column_name, _infer_type(values))
        for column_name, values in zip(header, samples)
    ]
    return Relation(name, attributes)


def _infer_type(values: list[str]) -> AttributeType:
    from repro.sql.ast import parse_flexible_date

    if not values:
        return AttributeType.TEXT
    if all(_parses_as_int(v) for v in values):
        return AttributeType.INT
    if all(_parses_as_float(v) for v in values):
        return AttributeType.REAL
    if all(parse_flexible_date(v) is not None for v in values):
        return AttributeType.DATE
    return AttributeType.TEXT


def _parses_as_int(field: str) -> bool:
    try:
        int(field)
    except ValueError:
        return False
    return True


def _parses_as_float(field: str) -> bool:
    try:
        float(field)
    except ValueError:
        return False
    return True


def iter_csv_rows(
    relation: Relation, path: str | Path
) -> Iterator[tuple]:
    """Stream typed row tuples from a CSV written by :func:`save_table_csv`.

    Constant memory: rows are validated, coerced through the relation's
    attribute types, and yielded one at a time — feed them to the
    accumulators in :mod:`repro.core.streaming` to aggregate files larger
    than RAM.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError(f"{path} is empty; expected a header row") from None
        if tuple(header) != relation.attribute_names:
            raise StorageError(
                f"{path} header {header} does not match relation "
                f"{relation.name!r} attributes {list(relation.attribute_names)}"
            )
        for line_number, raw in enumerate(reader, start=2):
            if len(raw) != len(relation):
                raise StorageError(
                    f"{path}:{line_number}: expected {len(relation)} fields, "
                    f"got {len(raw)}"
                )
            yield tuple(
                attribute.type.coerce(None if field == "" else field)
                for attribute, field in zip(relation.attributes, raw)
            )


def load_table_csv(relation: Relation, path: str | Path) -> Table:
    """Read a CSV written by :func:`save_table_csv` back into a Table.

    The header must match the relation's attribute names exactly (order
    included); values are coerced through the attribute types, so an INT
    column containing ``"3.5"`` raises rather than silently truncating.
    """
    path = Path(path)
    table = Table(relation)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError(f"{path} is empty; expected a header row") from None
        if tuple(header) != relation.attribute_names:
            raise StorageError(
                f"{path} header {header} does not match relation "
                f"{relation.name!r} attributes {list(relation.attribute_names)}"
            )
        for line_number, raw in enumerate(reader, start=2):
            if len(raw) != len(relation):
                raise StorageError(
                    f"{path}:{line_number}: expected {len(relation)} fields, "
                    f"got {len(raw)}"
                )
            table.append(
                tuple(None if field == "" else field for field in raw)
            )
    return table
