"""Storage substrates.

Two execution substrates back the query algorithms:

* :class:`~repro.storage.table.Table` — an in-memory row store used by the
  by-tuple algorithms, which need to visit each tuple and evaluate it under
  every candidate mapping;
* :class:`~repro.storage.sqlite_backend.SQLiteBackend` — a stdlib
  ``sqlite3``-backed engine used by the by-table algorithms, which issue one
  ordinary SQL aggregate query per mapping.  This stands in for the paper's
  PostgreSQL instance and supplies the "DBMS optimizations" that make the
  by-table path scale.
"""

from repro.storage.csv_io import load_table_csv, save_table_csv
from repro.storage.sqlite_backend import SQLiteBackend
from repro.storage.table import Table

__all__ = ["SQLiteBackend", "Table", "load_table_csv", "save_table_csv"]
